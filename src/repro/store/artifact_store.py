"""Content-addressed on-disk artifact store.

Layout of a store directory::

    <root>/
        objects/     <key>.json | <key>.npz    the payloads
        manifest/    <key>.json                one index entry per key
        quarantine/  <filename>                corrupt objects, moved aside

Writes are *atomic*: the payload is written to a hidden ``*.tmp`` file
in the same directory and moved into place with :func:`os.replace`, and
the manifest entry is only written after the object exists.  A key is a
*hit* only when both the manifest entry and the object file are present,
so a crash mid-write (a stray temp file, or an object without its
manifest entry) can never surface as a corrupt hit — the next producer
simply recomputes and overwrites.

Reads are *verified*: every manifest entry records the SHA-256 digest of
the payload bytes, and :meth:`ArtifactStore.get_json` /
:meth:`ArtifactStore.get_arrays` re-hash the object before parsing it.
A torn or truncated object (digest mismatch, unparseable JSON, a bad
zip) is **never returned**: the object is moved to ``quarantine/``, the
manifest entry is dropped — so the key becomes a clean miss — and the
read raises :class:`StoreIntegrityError` naming the key and the object
path.  The :meth:`ArtifactStore.load_json` / :meth:`load_arrays`
convenience readers fold both "missing" and "corrupt" into ``None`` for
callers that recompute on a miss.  :meth:`ArtifactStore.fsck` audits the
whole store (digests, parseability, dangling entries, orphan objects,
stray temp files) and :meth:`ArtifactStore.gc` sweeps the garbage.

Because keys are content addresses of the *producing* configuration
(:mod:`repro.store.keys`) and every producer in this repository is
seed-deterministic, concurrent writers of the same key write identical
bytes; the last ``os.replace`` wins and nothing is torn.

**Concurrency protocol** (``locking=True``, the default): any number of
writer processes and one maintenance process can share a store
directory.  Writers register a heartbeated :mod:`lease
<repro.store.leases>` and take the *shared* side of the store lock
(:mod:`repro.store.locks`) around each file mutation, plus a per-key
write lock across the object-then-manifest pair; reads stay lock-free
on the hit path (the digest check guarantees integrity, not a lock).
:meth:`ArtifactStore.gc` and :meth:`ArtifactStore.fsck(repair=True)
<ArtifactStore.fsck>` take the *exclusive* side with a bounded wait,
break stale leases (dead pid or expired heartbeat), treat orphan
objects and temp files covered by a live foreign lease as off-limits
(a live writer mid-``put`` looks exactly like an orphan), and
re-verify each candidate against the manifest immediately before any
destructive action — so maintenance is safe to loop against a live
campaign fleet.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import time
import zipfile
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

import numpy as np

from .leases import (
    DEFAULT_LEASE_TTL_S,
    LeaseInfo,
    WriterLease,
    break_stale_leases,
    list_leases,
    live_foreign_leases,
)
from .locks import DEFAULT_LOCK_TIMEOUT_S, FileLock, LockTimeout
from .retry import RetryPolicy

PathLike = Union[str, Path]

#: On-disk layout version, stored in every manifest entry.  Version 2
#: added the payload ``digest``; version-1 entries (no digest) still
#: load, they just skip digest verification.
STORE_FORMAT_VERSION = 2

_KEY_FORBIDDEN = set("/\\")


class StoreIntegrityError(RuntimeError):
    """A stored object failed verification (torn, truncated or corrupt).

    Raised by the ``get_*`` readers *after* the corrupt object has been
    quarantined and its manifest entry dropped — the key is a clean miss
    by the time the caller sees this, so retrying the read-through path
    recomputes instead of crashing again.
    """


def _check_key(key: str) -> str:
    if not key or not isinstance(key, str):
        raise ValueError("artifact key must be a non-empty string")
    if set(key) & _KEY_FORBIDDEN or key.startswith("."):
        raise ValueError(f"artifact key {key!r} is not a safe filename")
    return key


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def encode_json_bytes(payload: Any) -> bytes:
    """The canonical JSON payload encoding of the store.

    One encoder serves every backend (local directory, remote object
    store): identical payloads produce identical bytes, hence identical
    digests, which is what makes replication and journal drains
    idempotent.
    """
    from ..io.results import to_jsonable

    return json.dumps(to_jsonable(payload), indent=2,
                      sort_keys=True).encode()


def encode_array_bytes(arrays: Mapping[str, "np.ndarray"]) -> bytes:
    """The canonical compressed-npz payload encoding of the store."""
    if not arrays:
        raise ValueError("cannot store an empty array payload")
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **{str(name): np.asarray(value)
                                   for name, value in arrays.items()})
    return buffer.getvalue()


def decode_json_bytes(data: bytes) -> Any:
    """Parse a JSON object payload (raises ``ValueError`` when torn)."""
    return json.loads(data)


def decode_array_bytes(data: bytes) -> Dict[str, "np.ndarray"]:
    """Parse an npz object payload (raises on a torn/corrupt archive)."""
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def _list_dir(directory: Path) -> List[Path]:
    """Sorted children of ``directory``; empty when the directory is
    missing (a fresh or partially-copied store must audit as empty, not
    crash maintenance)."""
    try:
        return sorted(directory.iterdir())
    except FileNotFoundError:
        return []


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file + replace."""
    handle, temp_name = tempfile.mkstemp(prefix=f".{path.name}.",
                                         suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(handle, "wb") as temp_file:
            temp_file.write(data)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class ManifestEntry:
    """Index record of one stored artifact."""

    key: str
    kind: str
    filename: str
    meta: Dict[str, Any] = field(default_factory=dict)
    #: SHA-256 of the object payload bytes; ``None`` on legacy
    #: (format-version-1) entries, which skip digest verification.
    digest: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"format_version": STORE_FORMAT_VERSION, "key": self.key,
                "kind": self.kind, "filename": self.filename,
                "meta": dict(self.meta), "digest": self.digest}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ManifestEntry":
        return cls(key=payload["key"], kind=payload["kind"],
                   filename=payload["filename"],
                   meta=dict(payload.get("meta", {})),
                   digest=payload.get("digest"))


@dataclass
class FsckReport:
    """Outcome of one :meth:`ArtifactStore.fsck` audit."""

    ok: List[str] = field(default_factory=list)
    #: Keys whose object failed digest verification or parsing.
    corrupt: List[str] = field(default_factory=list)
    #: Keys whose manifest entry points at a missing object.
    missing_objects: List[str] = field(default_factory=list)
    #: Manifest files that are not parseable manifest entries.
    unreadable_manifests: List[str] = field(default_factory=list)
    #: Keys whose corrupt manifest was rebuilt from the intact object
    #: (``repair=True`` only) — the work was kept, not discarded.
    rebuilt_manifests: List[str] = field(default_factory=list)
    #: Object files no manifest entry references.
    orphan_objects: List[str] = field(default_factory=list)
    #: Orphan objects covered by a live writer lease — a concurrent
    #: ``put`` between its object and manifest writes, left untouched.
    leased_orphans: List[str] = field(default_factory=list)
    #: Leftover ``*.tmp`` files from interrupted writes.
    stray_tmp: List[str] = field(default_factory=list)
    #: Stale writer leases (dead pid / expired heartbeat) broken by a
    #: ``repair=True`` pass.
    broken_leases: List[str] = field(default_factory=list)
    #: True when the audit also repaired what it found.
    repaired: bool = False

    def clean(self) -> bool:
        """True when the audit found nothing wrong.

        Leased orphans do not count: an orphan covered by a live lease
        is a concurrent writer mid-``put``, i.e. normal operation.
        """
        return not (self.corrupt or self.missing_objects
                    or self.unreadable_manifests or self.rebuilt_manifests
                    or self.orphan_objects or self.stray_tmp)

    def summary(self) -> str:
        lines = [f"{len(self.ok)} artifact(s) verified"]
        for label, items in (
                ("corrupt (quarantined)" if self.repaired else "corrupt",
                 self.corrupt),
                ("dangling manifest entries", self.missing_objects),
                ("unreadable manifest files", self.unreadable_manifests),
                ("manifest(s) rebuilt from intact objects",
                 self.rebuilt_manifests),
                ("orphan objects (removed)" if self.repaired
                 else "orphan objects", self.orphan_objects),
                ("orphan(s) covered by a live writer lease (kept)",
                 self.leased_orphans),
                ("stray temp files", self.stray_tmp),
                ("stale lease(s) broken", self.broken_leases)):
            if items:
                shown = ", ".join(items[:5])
                suffix = f" … and {len(items) - 5} more" if len(items) > 5 \
                    else ""
                lines.append(f"{len(items)} {label}: {shown}{suffix}")
        if self.clean():
            lines.append("store is clean")
        return "\n".join(lines)


class ArtifactStore:
    """Content-addressed npz/JSON artifact store with a manifest index.

    ``locking=False`` restores the single-process store (no locks, no
    leases) — kept for the concurrency-overhead benchmark baseline and
    for callers that own the directory exclusively.
    """

    def __init__(self, root: PathLike, *, locking: bool = True,
                 lock_timeout_s: float = DEFAULT_LOCK_TIMEOUT_S,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.manifest_dir = self.root / "manifest"
        self.quarantine_dir = self.root / "quarantine"
        self.locks_dir = self.root / "locks"
        self.leases_dir = self.root / "leases"
        self.locking = bool(locking)
        self.lock_timeout_s = float(lock_timeout_s)
        self.lease_ttl_s = float(lease_ttl_s)
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_dir.mkdir(parents=True, exist_ok=True)
        self._lease: Optional[WriterLease] = None
        #: Transient-IO retry policy around lock acquisition and
        #: manifest/object reads (EAGAIN-class blips, not real misses).
        self.retry = RetryPolicy(token=f"store:{os.getpid()}")

    # -- locks & leases -----------------------------------------------------------

    def _store_lock(self) -> FileLock:
        return FileLock(self.locks_dir / "store.lock")

    def _key_lock(self, key: str) -> FileLock:
        return FileLock(self.locks_dir / f"key.{key}.lock")

    @contextmanager
    def _shared_store_lock(self):
        """Shared side of the store lock around one file mutation."""
        if not self.locking:
            yield
            return
        lock = self._store_lock()
        self.retry.call(lambda: lock.acquire(
            shared=True, timeout_s=self.lock_timeout_s))
        try:
            yield
        finally:
            lock.release()

    def _write_guard(self, key: str):
        """Per-key writer mutual exclusion (plus lease upkeep)."""
        if not self.locking:
            return nullcontext()
        self._ensure_lease()
        lock = self._key_lock(key)
        return lock.holding(shared=False, timeout_s=self.lock_timeout_s)

    @contextmanager
    def _maintenance_lock(self, wait_s: Optional[float]):
        """Exclusive store lock with bounded wait for gc/fsck-repair."""
        if not self.locking:
            yield
            return
        lock = self._store_lock()
        timeout = self.lock_timeout_s if wait_s is None else float(wait_s)
        lock.acquire(shared=False, timeout_s=timeout)
        try:
            yield
        finally:
            lock.release()

    def acquire_lease(self, owner: str = "") -> Optional[WriterLease]:
        """Register (or refresh) this process's writer lease.

        Campaign engines call this at run start so their whole run —
        including the compute time between store writes — counts as
        live to concurrent maintenance.  ``put_*`` calls it implicitly.
        """
        if not self.locking:
            return None
        if self._lease is None:
            self._lease = WriterLease(self.leases_dir, owner=owner,
                                      ttl_s=self.lease_ttl_s)
        self._lease.acquire()
        return self._lease

    def _ensure_lease(self) -> None:
        if self._lease is None or self._lease._released:
            self.acquire_lease()
        else:
            self._lease.heartbeat()

    def release_lease(self) -> None:
        """Drop this process's writer lease (idempotent)."""
        if self._lease is not None:
            self._lease.release()

    def leases(self) -> List[LeaseInfo]:
        """Every parseable lease currently registered on this store."""
        return list_leases(self.leases_dir)

    # -- write --------------------------------------------------------------------

    def _record(self, key: str, kind: str, object_path: Path,
                meta: Optional[Mapping[str, Any]],
                digest: Optional[str]) -> ManifestEntry:
        entry = ManifestEntry(key=key, kind=kind, filename=object_path.name,
                              meta=dict(meta or {}), digest=digest)
        with self._shared_store_lock():
            _atomic_write_bytes(
                self.manifest_dir / f"{key}.json",
                json.dumps(entry.to_dict(), indent=2,
                           sort_keys=True).encode(),
            )
        return entry

    def _write_object(self, object_path: Path, data: bytes) -> None:
        with self._shared_store_lock():
            _atomic_write_bytes(object_path, data)

    def put_json(self, key: str, payload: Any, *, kind: str = "json",
                 meta: Optional[Mapping[str, Any]] = None) -> ManifestEntry:
        """Store a JSON-serialisable payload under ``key``."""
        _check_key(key)
        data = encode_json_bytes(payload)
        object_path = self.objects_dir / f"{key}.json"
        with self._write_guard(key):
            self._write_object(object_path, data)
            return self._record(key, kind, object_path, meta, _sha256(data))

    def put_arrays(self, key: str, arrays: Mapping[str, np.ndarray], *,
                   kind: str = "arrays",
                   meta: Optional[Mapping[str, Any]] = None) -> ManifestEntry:
        """Store a named-array payload under ``key`` as compressed npz."""
        _check_key(key)
        data = encode_array_bytes(arrays)
        object_path = self.objects_dir / f"{key}.npz"
        with self._write_guard(key):
            self._write_object(object_path, data)
            return self._record(key, kind, object_path, meta, _sha256(data))

    def put_verbatim(self, entry: ManifestEntry, data: bytes) -> ManifestEntry:
        """Replicate an artifact byte-for-byte from another backend.

        The tiered store's remote→local backfill (and any future
        replicator) lands payloads through here: the bytes are verified
        against the entry's digest *before* anything touches disk, then
        written with the same atomic object-then-manifest protocol as a
        fresh ``put_*`` — so a corrupt payload can never be installed as
        a local hit.
        """
        _check_key(entry.key)
        if entry.digest is not None and _sha256(data) != entry.digest:
            raise StoreIntegrityError(
                f"refusing to replicate artifact {entry.key!r}: payload "
                f"bytes do not match the manifest digest")
        object_path = self.objects_dir / entry.filename
        with self._write_guard(entry.key):
            self._write_object(object_path, data)
            return self._record(entry.key, entry.kind, object_path,
                                entry.meta, entry.digest)

    def object_bytes(self, key: str) -> bytes:
        """The verified raw payload bytes of ``key`` (for replication)."""
        return self._verified_bytes(key)

    def spawn_config(self) -> Dict[str, Any]:
        """A picklable description a worker process can rebuild from."""
        return {"kind": "local", "root": str(self.root),
                "locking": self.locking}

    # -- read ---------------------------------------------------------------------

    def entry(self, key: str) -> Optional[ManifestEntry]:
        """The manifest entry of ``key`` — ``None`` unless key is a full hit."""
        _check_key(key)
        manifest_path = self.manifest_dir / f"{key}.json"
        if not manifest_path.exists():
            return None
        try:
            # Retry transient-IO blips; a manifest removed between the
            # existence check and the read (concurrent discard) is a
            # plain miss.
            text = self.retry.call(manifest_path.read_text)
            entry = ManifestEntry.from_dict(json.loads(text))
        except (FileNotFoundError, json.JSONDecodeError, KeyError):
            return None
        if not (self.objects_dir / entry.filename).exists():
            return None
        return entry

    def __contains__(self, key: str) -> bool:
        return self.entry(key) is not None

    def has(self, key: str) -> bool:
        return key in self

    def _quarantine_object(self, key: str, object_path: Path) -> Path:
        """Move a corrupt object aside and drop its manifest entry.

        After this the key is a clean *miss*: the corrupt payload can
        never be returned again and the next producer recomputes.  The
        destination name gets a monotonic suffix when it is already
        taken, so a key corrupted more than once keeps every forensic
        payload instead of silently clobbering the previous one.
        """
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        destination = self.quarantine_dir / object_path.name
        suffix = 0
        while destination.exists():
            suffix += 1
            destination = self.quarantine_dir / (
                f"{object_path.name}.{suffix}")
        try:
            os.replace(object_path, destination)
        except OSError:
            pass
        try:
            (self.manifest_dir / f"{key}.json").unlink()
        except OSError:
            pass
        return destination

    def _verified_bytes(self, key: str) -> bytes:
        """The object payload of ``key``, digest-checked.

        Raises ``KeyError`` on a miss and :class:`StoreIntegrityError`
        (after quarantining) when the payload does not match its
        recorded digest.
        """
        entry = self.entry(key)
        if entry is None:
            raise KeyError(f"artifact {key!r} is not in the store")
        object_path = self.objects_dir / entry.filename
        try:
            # Transient EAGAIN-class blips retry with backoff; a
            # vanished object (concurrent discard/gc between the
            # manifest read and this read) is a clean *miss*, not a
            # raw FileNotFoundError escaping into the engine.
            data = self.retry.call(object_path.read_bytes)
        except FileNotFoundError:
            raise KeyError(
                f"artifact {key!r} object disappeared between the "
                f"manifest read and the payload read (concurrent "
                f"discard or gc); the key is a miss"
            ) from None
        if entry.digest is not None and _sha256(data) != entry.digest:
            destination = self._quarantine_object(key, object_path)
            raise StoreIntegrityError(
                f"artifact {key!r} object {object_path} does not match its "
                f"recorded SHA-256 digest (torn or truncated write); the "
                f"corrupt object was quarantined to {destination} and the "
                f"key is now a miss"
            )
        return data

    def get_json(self, key: str) -> Any:
        """Load the JSON payload stored under ``key``.

        A corrupt payload is quarantined and raised as
        :class:`StoreIntegrityError` — never returned, never a raw
        ``JSONDecodeError``.
        """
        data = self._verified_bytes(key)
        try:
            return decode_json_bytes(data)
        except ValueError as error:
            object_path = self.objects_dir / f"{key}.json"
            destination = self._quarantine_object(key, object_path)
            raise StoreIntegrityError(
                f"artifact {key!r} object {object_path} holds unparseable "
                f"JSON ({error}); the corrupt object was quarantined to "
                f"{destination} and the key is now a miss"
            ) from error

    def get_arrays(self, key: str) -> Dict[str, np.ndarray]:
        """Load the named-array payload stored under ``key``.

        A corrupt payload is quarantined and raised as
        :class:`StoreIntegrityError` — never returned, never a raw
        ``BadZipFile``.
        """
        data = self._verified_bytes(key)
        try:
            return decode_array_bytes(data)
        except (zipfile.BadZipFile, ValueError, OSError, EOFError) as error:
            object_path = self.objects_dir / f"{key}.npz"
            destination = self._quarantine_object(key, object_path)
            raise StoreIntegrityError(
                f"artifact {key!r} object {object_path} holds an unreadable "
                f"npz archive ({error}); the corrupt object was quarantined "
                f"to {destination} and the key is now a miss"
            ) from error

    def load_json(self, key: str) -> Optional[Any]:
        """Read-through helper: the payload, or ``None`` on miss *or*
        corruption (the corrupt object is quarantined either way)."""
        try:
            return self.get_json(key)
        except (KeyError, StoreIntegrityError):
            return None

    def load_arrays(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """Read-through helper: the arrays, or ``None`` on miss *or*
        corruption (the corrupt object is quarantined either way)."""
        try:
            return self.get_arrays(key)
        except (KeyError, StoreIntegrityError):
            return None

    # -- index --------------------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """Iterate over the keys with a valid manifest entry *and* object."""
        for manifest_path in sorted(self.manifest_dir.glob("*.json")):
            key = manifest_path.stem
            if key in self:
                yield key

    def index(self) -> Dict[str, ManifestEntry]:
        """The manifest: every complete (entry + object) artifact."""
        entries = {}
        for key in self.keys():
            entry = self.entry(key)
            if entry is not None:
                entries[key] = entry
        return entries

    def discard(self, key: str) -> bool:
        """Remove ``key`` (manifest entry first, then the object).

        The object is removed by key prefix over ``objects/``, not only
        through the manifest entry: an unreadable entry (e.g. a torn
        manifest write) must not leak the object file forever.
        """
        _check_key(key)
        entry = self.entry(key)
        removed = False
        manifest_path = self.manifest_dir / f"{key}.json"
        if manifest_path.exists():
            manifest_path.unlink()
            removed = True
        object_paths = {self.objects_dir / f"{key}.json",
                        self.objects_dir / f"{key}.npz"}
        if entry is not None:
            object_paths.add(self.objects_dir / entry.filename)
        for object_path in object_paths:
            if object_path.exists():
                object_path.unlink()
                removed = True
        return removed

    # -- integrity ----------------------------------------------------------------

    def _stray_tmp_files(self, older_than_s: float = 0.0) -> List[Path]:
        """Leftover temp files of interrupted writes, oldest first."""
        now = time.time()
        strays = []
        for directory in (self.objects_dir, self.manifest_dir):
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob(".*.tmp")):
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue
                if age >= older_than_s:
                    strays.append(path)
        return strays

    def sweep_tmp(self, older_than_s: float = 0.0,
                  force: bool = False) -> List[Path]:
        """Delete stray ``*.tmp`` files older than ``older_than_s``.

        With lease accounting active, temp files are off-limits while
        any live *foreign* lease exists (a live writer's temp file is
        its in-flight write) unless ``force=True`` — liveness is
        explicit, so no mtime guess is needed.  On a ``locking=False``
        store a positive age guard is the only protection against
        racing a live writer.
        """
        if (self.locking and not force
                and live_foreign_leases(self.leases_dir)):
            return []
        removed = []
        for path in self._stray_tmp_files(older_than_s):
            try:
                path.unlink()
                removed.append(path)
            except OSError:
                pass
        return removed

    def _verify_entry(self, key: str, entry: ManifestEntry) -> bool:
        """True when the entry's payload passes digest + parse checks."""
        object_path = self.objects_dir / entry.filename
        try:
            data = object_path.read_bytes()
        except OSError:
            return False
        if entry.digest is not None and _sha256(data) != entry.digest:
            return False
        try:
            if entry.filename.endswith(".json"):
                json.loads(data)
            else:
                with np.load(io.BytesIO(data), allow_pickle=False) as archive:
                    list(archive.files)
        except (ValueError, zipfile.BadZipFile, OSError, EOFError):
            return False
        return True

    def _rebuild_manifest(self, key: str) -> Optional[ManifestEntry]:
        """Rebuild a corrupt/unreadable manifest from the intact object.

        The payload must parse cleanly; the digest is recomputed from
        the bytes.  The original ``kind``/``meta`` are lost, so the
        rebuilt entry carries a generic kind plus a ``rebuilt`` marker.
        Returns ``None`` when no parseable object exists for the key.
        """
        for suffix, kind in ((".json", "json"), (".npz", "arrays")):
            object_path = self.objects_dir / f"{key}{suffix}"
            try:
                data = object_path.read_bytes()
            except OSError:
                continue
            try:
                if suffix == ".json":
                    json.loads(data)
                else:
                    with np.load(io.BytesIO(data),
                                 allow_pickle=False) as archive:
                        list(archive.files)
            except (ValueError, zipfile.BadZipFile, OSError, EOFError):
                continue
            # Written directly, NOT via _record: the caller (fsck
            # --repair) already holds the exclusive store lock, and a
            # same-process shared acquisition on a second fd would
            # self-conflict under flock semantics.
            entry = ManifestEntry(key=key, kind=kind,
                                  filename=object_path.name,
                                  meta={"rebuilt": True},
                                  digest=_sha256(data))
            _atomic_write_bytes(
                self.manifest_dir / f"{key}.json",
                json.dumps(entry.to_dict(), indent=2, sort_keys=True).encode())
            return entry
        return None

    def _protected_filenames(self) -> set:
        """Object filenames no maintenance pass may treat as orphans."""
        protected: set = set()
        for entry in self.index().values():
            protected.add(entry.filename)
        return protected

    def fsck(self, repair: bool = False,
             wait_s: Optional[float] = None,
             force: bool = False) -> FsckReport:
        """Audit every artifact: digests, parseability, dangling state.

        ``repair=False`` is a lock-free read-only audit.  With
        ``repair=True`` the audit runs under the **exclusive** store
        lock (bounded ``wait_s``; raises :class:`LockTimeout` when
        writers keep it busy), breaks stale writer leases first, and
        then: quarantines corrupt objects, drops dangling manifest
        entries, **rebuilds** a corrupt manifest from its intact object
        (digest recomputed) instead of discarding the work, removes
        orphan objects not covered by a live lease, and sweeps stray
        temp files.  Orphans and temp files covered by a live foreign
        lease are off-limits — they are a concurrent writer between its
        object and manifest writes — unless ``force=True``.  A second
        ``repair`` pass over an idle store reports clean.
        """
        guard = self._maintenance_lock(wait_s) if repair else nullcontext()
        with guard:
            return self._fsck_locked(repair=repair, force=force)

    def _fsck_locked(self, repair: bool, force: bool) -> FsckReport:
        report = FsckReport(repaired=repair)
        if repair and self.locking:
            report.broken_leases = [
                lease.path.name
                for lease in break_stale_leases(self.leases_dir)]
        live = (live_foreign_leases(self.leases_dir)
                if self.locking and not force else [])
        referenced: set = set()
        for manifest_path in sorted(self.manifest_dir.glob("*.json")):
            key = manifest_path.stem
            try:
                entry = ManifestEntry.from_dict(
                    json.loads(manifest_path.read_text()))
            except (ValueError, KeyError):
                # The entry's objects are claimed by this (broken) key,
                # not orphans — rebuilt or removed with it on repair.
                referenced.update({f"{key}.json", f"{key}.npz"})
                if not repair:
                    report.unreadable_manifests.append(key)
                    continue
                rebuilt = self._rebuild_manifest(key)
                if rebuilt is not None:
                    report.rebuilt_manifests.append(key)
                else:
                    report.unreadable_manifests.append(key)
                    manifest_path.unlink(missing_ok=True)
                    for suffix in (".json", ".npz"):
                        stray = self.objects_dir / f"{key}{suffix}"
                        if stray.exists():
                            stray.unlink()
                continue
            referenced.add(entry.filename)
            object_path = self.objects_dir / entry.filename
            if not object_path.exists():
                report.missing_objects.append(key)
                if repair:
                    manifest_path.unlink(missing_ok=True)
                continue
            if self._verify_entry(key, entry):
                report.ok.append(key)
            else:
                report.corrupt.append(key)
                if repair:
                    self._quarantine_object(key, object_path)
        for object_path in _list_dir(self.objects_dir):
            name = object_path.name
            if name.startswith(".") and name.endswith(".tmp"):
                continue
            if name in referenced:
                continue
            if live:
                report.leased_orphans.append(name)
                continue
            report.orphan_objects.append(name)
            if repair:
                # Re-verify against the manifest immediately before the
                # destructive action: a writer may have recorded the
                # entry since the index snapshot (force mode only — the
                # exclusive lock already excludes writers otherwise).
                if (self.manifest_dir / f"{object_path.stem}.json").exists():
                    report.orphan_objects.pop()
                    continue
                try:
                    object_path.unlink()
                except OSError:  # pragma: no cover - lost a delete race
                    pass
        if live:
            report.stray_tmp = []
        else:
            report.stray_tmp = [str(path.relative_to(self.root))
                                for path in self._stray_tmp_files()]
            if repair:
                self.sweep_tmp()
        return report

    def gc(self, tmp_older_than_s: Optional[float] = None,
           purge_quarantine: bool = False,
           wait_s: Optional[float] = None,
           force: bool = False) -> Dict[str, Any]:
        """Sweep garbage: orphan objects, stray temp files, quarantine.

        Runs under the **exclusive** store lock with a bounded wait
        (raises :class:`LockTimeout` if writers keep the shared side
        busy past ``wait_s``), breaks stale writer leases (dead pid or
        expired heartbeat — logged in the returned summary), and then
        deletes orphan objects and stray temp files **only when no live
        foreign lease covers the store** — a live lease means a writer
        may be between its object and manifest writes, and its orphan
        is its in-flight work.  ``force=True`` overrides the lease
        protection (for operators who know the fleet is dead).  Each
        orphan is re-verified against the manifest immediately before
        deletion.

        ``tmp_older_than_s`` defaults to 0 with lease accounting active
        (liveness is explicit, no mtime guess needed) and to the legacy
        3600 s guard on a ``locking=False`` store.  Returns removal
        counts per category plus the broken/live lease names.
        """
        with self._maintenance_lock(wait_s):
            broken: List[str] = []
            if self.locking:
                broken = [lease.path.name
                          for lease in break_stale_leases(self.leases_dir)]
            live = (live_foreign_leases(self.leases_dir)
                    if self.locking and not force else [])
            if tmp_older_than_s is None:
                tmp_older_than_s = 0.0 if self.locking else 3600.0
            orphans = 0
            skipped_leased = 0
            if live:
                skipped_leased = sum(
                    1 for path in _list_dir(self.objects_dir)
                    if not (path.name.startswith(".")
                            and path.name.endswith(".tmp"))
                    and path.name not in self._protected_filenames())
            else:
                referenced = self._protected_filenames()
                for object_path in _list_dir(self.objects_dir):
                    name = object_path.name
                    if name.startswith(".") and name.endswith(".tmp"):
                        continue
                    if name in referenced:
                        continue
                    # Re-verify right before deleting: the manifest may
                    # have gained this key since the index snapshot.
                    if (self.manifest_dir
                            / f"{object_path.stem}.json").exists():
                        continue
                    try:
                        object_path.unlink()
                        orphans += 1
                    except OSError:
                        pass
            swept = 0 if live else len(self.sweep_tmp(tmp_older_than_s))
            quarantined = 0
            if purge_quarantine and self.quarantine_dir.exists():
                for path in sorted(self.quarantine_dir.iterdir()):
                    try:
                        path.unlink()
                        quarantined += 1
                    except OSError:
                        pass
            if not live and self.locking:
                self._sweep_key_locks()
            return {"orphan_objects": orphans, "stray_tmp": swept,
                    "quarantined": quarantined,
                    "skipped_leased": skipped_leased,
                    "broken_leases": broken,
                    "live_leases": [lease.path.name for lease in live]}

    def _sweep_key_locks(self) -> None:
        """Remove per-key lock files (safe: we hold the exclusive lock).

        Writers acquire the store's shared side around every file
        mutation *after* taking their per-key lock, so while the
        exclusive lock is held no writer is inside a per-key critical
        section; deleting the lock files cannot split a mutex.  The
        store-level lock file itself is kept (we are holding it).
        """
        if not self.locks_dir.exists():
            return
        for path in self.locks_dir.glob("key.*.lock"):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent sweep
                pass

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ArtifactStore({str(self.root)!r}, {len(self)} artifacts)"
