"""Content-addressed on-disk artifact store.

Layout of a store directory::

    <root>/
        objects/     <key>.json | <key>.npz    the payloads
        manifest/    <key>.json                one index entry per key
        quarantine/  <filename>                corrupt objects, moved aside

Writes are *atomic*: the payload is written to a hidden ``*.tmp`` file
in the same directory and moved into place with :func:`os.replace`, and
the manifest entry is only written after the object exists.  A key is a
*hit* only when both the manifest entry and the object file are present,
so a crash mid-write (a stray temp file, or an object without its
manifest entry) can never surface as a corrupt hit — the next producer
simply recomputes and overwrites.

Reads are *verified*: every manifest entry records the SHA-256 digest of
the payload bytes, and :meth:`ArtifactStore.get_json` /
:meth:`ArtifactStore.get_arrays` re-hash the object before parsing it.
A torn or truncated object (digest mismatch, unparseable JSON, a bad
zip) is **never returned**: the object is moved to ``quarantine/``, the
manifest entry is dropped — so the key becomes a clean miss — and the
read raises :class:`StoreIntegrityError` naming the key and the object
path.  The :meth:`ArtifactStore.load_json` / :meth:`load_arrays`
convenience readers fold both "missing" and "corrupt" into ``None`` for
callers that recompute on a miss.  :meth:`ArtifactStore.fsck` audits the
whole store (digests, parseability, dangling entries, orphan objects,
stray temp files) and :meth:`ArtifactStore.gc` sweeps the garbage.

Because keys are content addresses of the *producing* configuration
(:mod:`repro.store.keys`) and every producer in this repository is
seed-deterministic, concurrent writers of the same key write identical
bytes; the last ``os.replace`` wins and nothing is torn.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

import numpy as np

PathLike = Union[str, Path]

#: On-disk layout version, stored in every manifest entry.  Version 2
#: added the payload ``digest``; version-1 entries (no digest) still
#: load, they just skip digest verification.
STORE_FORMAT_VERSION = 2

_KEY_FORBIDDEN = set("/\\")


class StoreIntegrityError(RuntimeError):
    """A stored object failed verification (torn, truncated or corrupt).

    Raised by the ``get_*`` readers *after* the corrupt object has been
    quarantined and its manifest entry dropped — the key is a clean miss
    by the time the caller sees this, so retrying the read-through path
    recomputes instead of crashing again.
    """


def _check_key(key: str) -> str:
    if not key or not isinstance(key, str):
        raise ValueError("artifact key must be a non-empty string")
    if set(key) & _KEY_FORBIDDEN or key.startswith("."):
        raise ValueError(f"artifact key {key!r} is not a safe filename")
    return key


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file + replace."""
    handle, temp_name = tempfile.mkstemp(prefix=f".{path.name}.",
                                         suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(handle, "wb") as temp_file:
            temp_file.write(data)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class ManifestEntry:
    """Index record of one stored artifact."""

    key: str
    kind: str
    filename: str
    meta: Dict[str, Any] = field(default_factory=dict)
    #: SHA-256 of the object payload bytes; ``None`` on legacy
    #: (format-version-1) entries, which skip digest verification.
    digest: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"format_version": STORE_FORMAT_VERSION, "key": self.key,
                "kind": self.kind, "filename": self.filename,
                "meta": dict(self.meta), "digest": self.digest}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ManifestEntry":
        return cls(key=payload["key"], kind=payload["kind"],
                   filename=payload["filename"],
                   meta=dict(payload.get("meta", {})),
                   digest=payload.get("digest"))


@dataclass
class FsckReport:
    """Outcome of one :meth:`ArtifactStore.fsck` audit."""

    ok: List[str] = field(default_factory=list)
    #: Keys whose object failed digest verification or parsing.
    corrupt: List[str] = field(default_factory=list)
    #: Keys whose manifest entry points at a missing object.
    missing_objects: List[str] = field(default_factory=list)
    #: Manifest files that are not parseable manifest entries.
    unreadable_manifests: List[str] = field(default_factory=list)
    #: Object files no manifest entry references.
    orphan_objects: List[str] = field(default_factory=list)
    #: Leftover ``*.tmp`` files from interrupted writes.
    stray_tmp: List[str] = field(default_factory=list)
    #: True when the audit also repaired what it found.
    repaired: bool = False

    def clean(self) -> bool:
        """True when the audit found nothing wrong."""
        return not (self.corrupt or self.missing_objects
                    or self.unreadable_manifests or self.orphan_objects
                    or self.stray_tmp)

    def summary(self) -> str:
        lines = [f"{len(self.ok)} artifact(s) verified"]
        for label, items in (
                ("corrupt (quarantined)" if self.repaired else "corrupt",
                 self.corrupt),
                ("dangling manifest entries", self.missing_objects),
                ("unreadable manifest files", self.unreadable_manifests),
                ("orphan objects", self.orphan_objects),
                ("stray temp files", self.stray_tmp)):
            if items:
                shown = ", ".join(items[:5])
                suffix = f" … and {len(items) - 5} more" if len(items) > 5 \
                    else ""
                lines.append(f"{len(items)} {label}: {shown}{suffix}")
        if self.clean():
            lines.append("store is clean")
        return "\n".join(lines)


class ArtifactStore:
    """Content-addressed npz/JSON artifact store with a manifest index."""

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.manifest_dir = self.root / "manifest"
        self.quarantine_dir = self.root / "quarantine"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_dir.mkdir(parents=True, exist_ok=True)

    # -- write --------------------------------------------------------------------

    def _record(self, key: str, kind: str, object_path: Path,
                meta: Optional[Mapping[str, Any]],
                digest: Optional[str]) -> ManifestEntry:
        entry = ManifestEntry(key=key, kind=kind, filename=object_path.name,
                              meta=dict(meta or {}), digest=digest)
        _atomic_write_bytes(
            self.manifest_dir / f"{key}.json",
            json.dumps(entry.to_dict(), indent=2, sort_keys=True).encode(),
        )
        return entry

    def put_json(self, key: str, payload: Any, *, kind: str = "json",
                 meta: Optional[Mapping[str, Any]] = None) -> ManifestEntry:
        """Store a JSON-serialisable payload under ``key``."""
        _check_key(key)
        from ..io.results import to_jsonable

        data = json.dumps(to_jsonable(payload), indent=2,
                          sort_keys=True).encode()
        object_path = self.objects_dir / f"{key}.json"
        _atomic_write_bytes(object_path, data)
        return self._record(key, kind, object_path, meta, _sha256(data))

    def put_arrays(self, key: str, arrays: Mapping[str, np.ndarray], *,
                   kind: str = "arrays",
                   meta: Optional[Mapping[str, Any]] = None) -> ManifestEntry:
        """Store a named-array payload under ``key`` as compressed npz."""
        _check_key(key)
        if not arrays:
            raise ValueError("cannot store an empty array payload")
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **{str(name): np.asarray(value)
                                       for name, value in arrays.items()})
        data = buffer.getvalue()
        object_path = self.objects_dir / f"{key}.npz"
        _atomic_write_bytes(object_path, data)
        return self._record(key, kind, object_path, meta, _sha256(data))

    # -- read ---------------------------------------------------------------------

    def entry(self, key: str) -> Optional[ManifestEntry]:
        """The manifest entry of ``key`` — ``None`` unless key is a full hit."""
        _check_key(key)
        manifest_path = self.manifest_dir / f"{key}.json"
        if not manifest_path.exists():
            return None
        try:
            entry = ManifestEntry.from_dict(json.loads(manifest_path.read_text()))
        except (json.JSONDecodeError, KeyError):
            return None
        if not (self.objects_dir / entry.filename).exists():
            return None
        return entry

    def __contains__(self, key: str) -> bool:
        return self.entry(key) is not None

    def has(self, key: str) -> bool:
        return key in self

    def _quarantine_object(self, key: str, object_path: Path) -> Path:
        """Move a corrupt object aside and drop its manifest entry.

        After this the key is a clean *miss*: the corrupt payload can
        never be returned again and the next producer recomputes.
        """
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        destination = self.quarantine_dir / object_path.name
        try:
            os.replace(object_path, destination)
        except OSError:
            pass
        try:
            (self.manifest_dir / f"{key}.json").unlink()
        except OSError:
            pass
        return destination

    def _verified_bytes(self, key: str) -> bytes:
        """The object payload of ``key``, digest-checked.

        Raises ``KeyError`` on a miss and :class:`StoreIntegrityError`
        (after quarantining) when the payload does not match its
        recorded digest.
        """
        entry = self.entry(key)
        if entry is None:
            raise KeyError(f"artifact {key!r} is not in the store")
        object_path = self.objects_dir / entry.filename
        data = object_path.read_bytes()
        if entry.digest is not None and _sha256(data) != entry.digest:
            destination = self._quarantine_object(key, object_path)
            raise StoreIntegrityError(
                f"artifact {key!r} object {object_path} does not match its "
                f"recorded SHA-256 digest (torn or truncated write); the "
                f"corrupt object was quarantined to {destination} and the "
                f"key is now a miss"
            )
        return data

    def get_json(self, key: str) -> Any:
        """Load the JSON payload stored under ``key``.

        A corrupt payload is quarantined and raised as
        :class:`StoreIntegrityError` — never returned, never a raw
        ``JSONDecodeError``.
        """
        data = self._verified_bytes(key)
        try:
            return json.loads(data)
        except ValueError as error:
            object_path = self.objects_dir / f"{key}.json"
            destination = self._quarantine_object(key, object_path)
            raise StoreIntegrityError(
                f"artifact {key!r} object {object_path} holds unparseable "
                f"JSON ({error}); the corrupt object was quarantined to "
                f"{destination} and the key is now a miss"
            ) from error

    def get_arrays(self, key: str) -> Dict[str, np.ndarray]:
        """Load the named-array payload stored under ``key``.

        A corrupt payload is quarantined and raised as
        :class:`StoreIntegrityError` — never returned, never a raw
        ``BadZipFile``.
        """
        data = self._verified_bytes(key)
        try:
            with np.load(io.BytesIO(data), allow_pickle=False) as archive:
                return {name: archive[name] for name in archive.files}
        except (zipfile.BadZipFile, ValueError, OSError, EOFError) as error:
            object_path = self.objects_dir / f"{key}.npz"
            destination = self._quarantine_object(key, object_path)
            raise StoreIntegrityError(
                f"artifact {key!r} object {object_path} holds an unreadable "
                f"npz archive ({error}); the corrupt object was quarantined "
                f"to {destination} and the key is now a miss"
            ) from error

    def load_json(self, key: str) -> Optional[Any]:
        """Read-through helper: the payload, or ``None`` on miss *or*
        corruption (the corrupt object is quarantined either way)."""
        try:
            return self.get_json(key)
        except (KeyError, StoreIntegrityError):
            return None

    def load_arrays(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """Read-through helper: the arrays, or ``None`` on miss *or*
        corruption (the corrupt object is quarantined either way)."""
        try:
            return self.get_arrays(key)
        except (KeyError, StoreIntegrityError):
            return None

    # -- index --------------------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """Iterate over the keys with a valid manifest entry *and* object."""
        for manifest_path in sorted(self.manifest_dir.glob("*.json")):
            key = manifest_path.stem
            if key in self:
                yield key

    def index(self) -> Dict[str, ManifestEntry]:
        """The manifest: every complete (entry + object) artifact."""
        entries = {}
        for key in self.keys():
            entry = self.entry(key)
            if entry is not None:
                entries[key] = entry
        return entries

    def discard(self, key: str) -> bool:
        """Remove ``key`` (manifest entry first, then the object).

        The object is removed by key prefix over ``objects/``, not only
        through the manifest entry: an unreadable entry (e.g. a torn
        manifest write) must not leak the object file forever.
        """
        _check_key(key)
        entry = self.entry(key)
        removed = False
        manifest_path = self.manifest_dir / f"{key}.json"
        if manifest_path.exists():
            manifest_path.unlink()
            removed = True
        object_paths = {self.objects_dir / f"{key}.json",
                        self.objects_dir / f"{key}.npz"}
        if entry is not None:
            object_paths.add(self.objects_dir / entry.filename)
        for object_path in object_paths:
            if object_path.exists():
                object_path.unlink()
                removed = True
        return removed

    # -- integrity ----------------------------------------------------------------

    def _stray_tmp_files(self, older_than_s: float = 0.0) -> List[Path]:
        """Leftover temp files of interrupted writes, oldest first."""
        now = time.time()
        strays = []
        for directory in (self.objects_dir, self.manifest_dir):
            for path in sorted(directory.glob(".*.tmp")):
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue
                if age >= older_than_s:
                    strays.append(path)
        return strays

    def sweep_tmp(self, older_than_s: float = 0.0) -> List[Path]:
        """Delete stray ``*.tmp`` files older than ``older_than_s``.

        A positive age guard keeps a sweeping process from racing a
        *live* writer whose temp file simply has not been replaced yet.
        """
        removed = []
        for path in self._stray_tmp_files(older_than_s):
            try:
                path.unlink()
                removed.append(path)
            except OSError:
                pass
        return removed

    def _verify_entry(self, key: str, entry: ManifestEntry) -> bool:
        """True when the entry's payload passes digest + parse checks."""
        object_path = self.objects_dir / entry.filename
        try:
            data = object_path.read_bytes()
        except OSError:
            return False
        if entry.digest is not None and _sha256(data) != entry.digest:
            return False
        try:
            if entry.filename.endswith(".json"):
                json.loads(data)
            else:
                with np.load(io.BytesIO(data), allow_pickle=False) as archive:
                    list(archive.files)
        except (ValueError, zipfile.BadZipFile, OSError, EOFError):
            return False
        return True

    def fsck(self, repair: bool = False) -> FsckReport:
        """Audit every artifact: digests, parseability, dangling state.

        With ``repair=True``, corrupt objects are quarantined, dangling
        and unreadable manifest entries are dropped, and stray temp
        files are swept; orphan *objects* are reported but left for
        :meth:`gc` (an orphan may be a concurrent writer that has not
        recorded its manifest entry yet).
        """
        report = FsckReport(repaired=repair)
        referenced: set = set()
        for manifest_path in sorted(self.manifest_dir.glob("*.json")):
            key = manifest_path.stem
            try:
                entry = ManifestEntry.from_dict(
                    json.loads(manifest_path.read_text()))
            except (ValueError, KeyError):
                report.unreadable_manifests.append(key)
                # The entry's objects are claimed by this (broken) key,
                # not orphans — they are removed with it on repair.
                referenced.update({f"{key}.json", f"{key}.npz"})
                if repair:
                    manifest_path.unlink(missing_ok=True)
                    for suffix in (".json", ".npz"):
                        stray = self.objects_dir / f"{key}{suffix}"
                        if stray.exists():
                            stray.unlink()
                continue
            referenced.add(entry.filename)
            object_path = self.objects_dir / entry.filename
            if not object_path.exists():
                report.missing_objects.append(key)
                if repair:
                    manifest_path.unlink(missing_ok=True)
                continue
            if self._verify_entry(key, entry):
                report.ok.append(key)
            else:
                report.corrupt.append(key)
                if repair:
                    self._quarantine_object(key, object_path)
        for object_path in sorted(self.objects_dir.iterdir()):
            name = object_path.name
            if name.startswith(".") and name.endswith(".tmp"):
                continue
            if name not in referenced:
                report.orphan_objects.append(name)
        report.stray_tmp = [str(path.relative_to(self.root))
                            for path in self._stray_tmp_files()]
        if repair:
            self.sweep_tmp()
        return report

    def gc(self, tmp_older_than_s: float = 3600.0,
           purge_quarantine: bool = False) -> Dict[str, int]:
        """Sweep garbage: orphan objects, stray temp files, quarantine.

        Orphan objects (no manifest entry references them) are deleted —
        by the store's hit contract they can never be read.  Temp files
        are only swept past the age guard so a live writer is not raced.
        Returns removal counts per category.
        """
        referenced = {entry.filename for entry in self.index().values()}
        orphans = 0
        for object_path in sorted(self.objects_dir.iterdir()):
            name = object_path.name
            if name.startswith(".") and name.endswith(".tmp"):
                continue
            if name not in referenced:
                try:
                    object_path.unlink()
                    orphans += 1
                except OSError:
                    pass
        swept = len(self.sweep_tmp(tmp_older_than_s))
        quarantined = 0
        if purge_quarantine and self.quarantine_dir.exists():
            for path in sorted(self.quarantine_dir.iterdir()):
                try:
                    path.unlink()
                    quarantined += 1
                except OSError:
                    pass
        return {"orphan_objects": orphans, "stray_tmp": swept,
                "quarantined": quarantined}

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ArtifactStore({str(self.root)!r}, {len(self)} artifacts)"
