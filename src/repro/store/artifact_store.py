"""Content-addressed on-disk artifact store.

Layout of a store directory::

    <root>/
        objects/   <key>.json | <key>.npz      the payloads
        manifest/  <key>.json                  one index entry per key

Writes are *atomic*: the payload is written to a hidden ``*.tmp`` file
in the same directory and moved into place with :func:`os.replace`, and
the manifest entry is only written after the object exists.  A key is a
*hit* only when both the manifest entry and the object file are present,
so a crash mid-write (a stray temp file, or an object without its
manifest entry) can never surface as a corrupt hit — the next producer
simply recomputes and overwrites.

Because keys are content addresses of the *producing* configuration
(:mod:`repro.store.keys`) and every producer in this repository is
seed-deterministic, concurrent writers of the same key write identical
bytes; the last ``os.replace`` wins and nothing is torn.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Union

import numpy as np

PathLike = Union[str, Path]

#: On-disk layout version, stored in every manifest entry.
STORE_FORMAT_VERSION = 1

_KEY_FORBIDDEN = set("/\\")


def _check_key(key: str) -> str:
    if not key or not isinstance(key, str):
        raise ValueError("artifact key must be a non-empty string")
    if set(key) & _KEY_FORBIDDEN or key.startswith("."):
        raise ValueError(f"artifact key {key!r} is not a safe filename")
    return key


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file + replace."""
    handle, temp_name = tempfile.mkstemp(prefix=f".{path.name}.",
                                         suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(handle, "wb") as temp_file:
            temp_file.write(data)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class ManifestEntry:
    """Index record of one stored artifact."""

    key: str
    kind: str
    filename: str
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"format_version": STORE_FORMAT_VERSION, "key": self.key,
                "kind": self.kind, "filename": self.filename,
                "meta": dict(self.meta)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ManifestEntry":
        return cls(key=payload["key"], kind=payload["kind"],
                   filename=payload["filename"],
                   meta=dict(payload.get("meta", {})))


class ArtifactStore:
    """Content-addressed npz/JSON artifact store with a manifest index."""

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.manifest_dir = self.root / "manifest"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_dir.mkdir(parents=True, exist_ok=True)

    # -- write --------------------------------------------------------------------

    def _record(self, key: str, kind: str, object_path: Path,
                meta: Optional[Mapping[str, Any]]) -> ManifestEntry:
        entry = ManifestEntry(key=key, kind=kind, filename=object_path.name,
                              meta=dict(meta or {}))
        _atomic_write_bytes(
            self.manifest_dir / f"{key}.json",
            json.dumps(entry.to_dict(), indent=2, sort_keys=True).encode(),
        )
        return entry

    def put_json(self, key: str, payload: Any, *, kind: str = "json",
                 meta: Optional[Mapping[str, Any]] = None) -> ManifestEntry:
        """Store a JSON-serialisable payload under ``key``."""
        _check_key(key)
        from ..io.results import to_jsonable

        object_path = self.objects_dir / f"{key}.json"
        _atomic_write_bytes(
            object_path,
            json.dumps(to_jsonable(payload), indent=2, sort_keys=True).encode(),
        )
        return self._record(key, kind, object_path, meta)

    def put_arrays(self, key: str, arrays: Mapping[str, np.ndarray], *,
                   kind: str = "arrays",
                   meta: Optional[Mapping[str, Any]] = None) -> ManifestEntry:
        """Store a named-array payload under ``key`` as compressed npz."""
        _check_key(key)
        if not arrays:
            raise ValueError("cannot store an empty array payload")
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **{str(name): np.asarray(value)
                                       for name, value in arrays.items()})
        object_path = self.objects_dir / f"{key}.npz"
        _atomic_write_bytes(object_path, buffer.getvalue())
        return self._record(key, kind, object_path, meta)

    # -- read ---------------------------------------------------------------------

    def entry(self, key: str) -> Optional[ManifestEntry]:
        """The manifest entry of ``key`` — ``None`` unless key is a full hit."""
        _check_key(key)
        manifest_path = self.manifest_dir / f"{key}.json"
        if not manifest_path.exists():
            return None
        try:
            entry = ManifestEntry.from_dict(json.loads(manifest_path.read_text()))
        except (json.JSONDecodeError, KeyError):
            return None
        if not (self.objects_dir / entry.filename).exists():
            return None
        return entry

    def __contains__(self, key: str) -> bool:
        return self.entry(key) is not None

    def has(self, key: str) -> bool:
        return key in self

    def _object_path(self, key: str) -> Path:
        entry = self.entry(key)
        if entry is None:
            raise KeyError(f"artifact {key!r} is not in the store")
        return self.objects_dir / entry.filename

    def get_json(self, key: str) -> Any:
        """Load the JSON payload stored under ``key``."""
        return json.loads(self._object_path(key).read_text())

    def get_arrays(self, key: str) -> Dict[str, np.ndarray]:
        """Load the named-array payload stored under ``key``."""
        with np.load(self._object_path(key), allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}

    # -- index --------------------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """Iterate over the keys with a valid manifest entry *and* object."""
        for manifest_path in sorted(self.manifest_dir.glob("*.json")):
            key = manifest_path.stem
            if key in self:
                yield key

    def index(self) -> Dict[str, ManifestEntry]:
        """The manifest: every complete (entry + object) artifact."""
        entries = {}
        for key in self.keys():
            entry = self.entry(key)
            if entry is not None:
                entries[key] = entry
        return entries

    def discard(self, key: str) -> bool:
        """Remove ``key`` (manifest entry first, then the object)."""
        _check_key(key)
        entry = self.entry(key)
        removed = False
        manifest_path = self.manifest_dir / f"{key}.json"
        if manifest_path.exists():
            manifest_path.unlink()
            removed = True
        if entry is not None:
            object_path = self.objects_dir / entry.filename
            if object_path.exists():
                object_path.unlink()
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ArtifactStore({str(self.root)!r}, {len(self)} artifacts)"
