"""Bounded retries with deterministic jitter for transient-IO blips.

One backoff formula serves the whole repository: attempt ``n`` waits
``base_s * 2**(n-1) * (0.5 + jitter)`` where ``jitter`` is drawn from a
:class:`random.Random` seeded with a caller-chosen token plus the
attempt number.  Equal tokens therefore always produce equal delays —
the campaign supervisor's retry schedule is reproducible run-to-run —
while distinct tokens (different cells, different processes) spread
their retries apart instead of thundering in lockstep.

:class:`RetryPolicy` wraps the formula into a small "call with
retries" helper the store uses around lock acquisition and
manifest/object reads, so an ``EAGAIN``-class operating-system blip
costs a few milliseconds of backoff instead of a failed campaign cell.
"""

from __future__ import annotations

import errno
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

#: Errno values that indicate a transient operating-system condition —
#: worth a bounded retry, unlike a real miss (ENOENT) or a permission
#: problem.
TRANSIENT_ERRNOS = frozenset({
    errno.EAGAIN,
    errno.EWOULDBLOCK,
    errno.EINTR,
    errno.EBUSY,
    errno.ETXTBSY,
})


def is_transient_os_error(error: BaseException) -> bool:
    """True for ``EAGAIN``-class OS errors a bounded retry may clear."""
    return (isinstance(error, OSError)
            and error.errno in TRANSIENT_ERRNOS)


def is_retryable_error(error: BaseException) -> bool:
    """The explicit retryable-vs-fatal classification for store IO.

    Retryable — the operation may succeed if simply repeated:

    * connection-class failures (``ConnectionError`` and subclasses
      such as ``ConnectionResetError``/``BrokenPipeError``);
    * timeouts (``TimeoutError``, which since Python 3.10 also covers
      ``socket.timeout``);
    * ``EAGAIN``-class transient OS errors (:func:`is_transient_os_error`).

    Never retryable — repeating cannot change the outcome and retries
    would only mask the defect:

    * ``KeyError``/``LookupError`` — a store *miss* is an answer, not a
      failure;
    * integrity failures (``repro.store.artifact_store
      .StoreIntegrityError`` is a ``RuntimeError``, not an OS error) —
      corrupt bytes stay corrupt however often they are re-read; the
      quarantine path owns them;
    * everything else (``ValueError``, permission errors, ...).
    """
    if isinstance(error, LookupError):
        return False
    if isinstance(error, (ConnectionError, TimeoutError)):
        return True
    return is_transient_os_error(error)


def backoff_delay_s(base_s: float, attempt: int, token: str,
                    cap_s: Optional[float] = None) -> float:
    """Deterministic jittered exponential backoff after ``attempt``.

    This is the one backoff formula of the repository — the campaign
    supervisor's retry schedule and the store's transient-IO retries
    both come from here.  ``token`` seeds the jitter: equal tokens give
    equal delays (determinism), distinct tokens decorrelate concurrent
    retriers.
    """
    if base_s <= 0:
        return 0.0
    jitter = random.Random(f"{token}:{attempt}").random()
    delay = base_s * (2.0 ** (attempt - 1)) * (0.5 + jitter)
    if cap_s is not None:
        delay = min(delay, cap_s)
    return delay


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded transient-failure retries with deterministic jitter.

    ``attempts`` counts total tries (so ``attempts=1`` disables
    retrying); ``token`` seeds the jitter stream — give concurrent
    retriers distinct tokens (e.g. include the pid) so their backoff
    schedules interleave instead of colliding.
    """

    attempts: int = 4
    base_s: float = 0.005
    cap_s: float = 0.25
    token: str = ""

    def delay_s(self, attempt: int) -> float:
        """The wait after failed attempt ``attempt`` (1-based)."""
        return backoff_delay_s(self.base_s, attempt, self.token,
                               cap_s=self.cap_s)

    def call(self, operation: Callable[[], Any], *,
             retry_on: Callable[[BaseException], bool]
             = is_transient_os_error) -> Any:
        """Run ``operation``, retrying transient failures with backoff.

        Non-transient exceptions (per ``retry_on``) propagate
        immediately; the final attempt's failure propagates whatever it
        was.
        """
        for attempt in range(1, self.attempts + 1):
            try:
                return operation()
            except BaseException as error:
                if attempt >= self.attempts or not retry_on(error):
                    raise
                delay = self.delay_s(attempt)
                if delay > 0:
                    time.sleep(delay)
