"""Campaign artifact schemas: content keys and npz payload packing.

The campaign engine caches three expensive intermediates, all of which
are pure functions of a spec fragment and therefore content-addressable
(:mod:`repro.store.keys`):

* **population traces** — the per-(design, die) averaged EM traces of
  one acquisition point (die count x acquisition variant x stimulus
  set), the input every EM metric re-scores;
* **delay difference matrices** — the Eq. (4) per-(pair, bit) matrices
  of one clock-glitch campaign over the die population;
* **infected-design summaries** — the area bookkeeping a report row
  needs (a warm run must not pay for synthesis + trojan insertion just
  to print ``% of AES``);
* **cell results** — one executed grid cell's summary rows; their
  presence in the manifest is the per-cell completion record that
  interrupted or sharded runs resume from.

Payloads are npz (trace/matrix tensors) or JSON (summaries, rows); both
are self-describing so :func:`unpack_population_traces` and
:func:`unpack_delay_differences` need nothing but the archive.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..io.tracefile import traces_from_arrays, traces_to_arrays
from ..measurement.em_simulator import EMTrace
from .keys import stable_key

#: Bump when the meaning of a stored artifact changes; old keys then
#: simply miss instead of being misread.
ARTIFACT_SCHEMA_VERSION = 1

#: Key-payload marker of the built-in golden design (built
#: deterministically from the device, so the device identifies it).
DEFAULT_GOLDEN_SIGNATURE = "built-in"


def golden_signature(golden: Any) -> Dict[str, Any]:
    """A cheap content summary of a *custom* golden design.

    Engines built on the default golden use
    :data:`DEFAULT_GOLDEN_SIGNATURE` instead (the default build is a
    pure function of the device, and computing a signature would force
    the build a warm run is trying to skip).
    """
    return {
        "device": golden.device,
        "modelled_slices": golden.modelled_slice_count(),
        "net_delays": stable_key(golden.net_delays_ps),
    }


# -- content keys -------------------------------------------------------------


def population_traces_key(*, device: Any, golden: Any, em_config: Any,
                          seed: int, num_dies: int,
                          trojans: Sequence[str], key: bytes,
                          plaintexts: Sequence[bytes]) -> str:
    """Key of one acquisition point's (golden + infected) trace set."""
    return stable_key({
        "kind": "population_traces",
        "schema": ARTIFACT_SCHEMA_VERSION,
        "device": device,
        "golden": golden,
        "em": em_config,
        "seed": int(seed),
        "num_dies": int(num_dies),
        "trojans": list(trojans),
        "key": key,
        "plaintexts": list(plaintexts),
    })


def delay_differences_key(*, device: Any, golden: Any, delay_config: Any,
                          seed: int, num_dies: int,
                          trojans: Sequence[str], num_pk_pairs: int) -> str:
    """Key of one delay campaign's Eq. (4) difference matrices."""
    return stable_key({
        "kind": "delay_differences",
        "schema": ARTIFACT_SCHEMA_VERSION,
        "device": device,
        "golden": golden,
        "delay": delay_config,
        "seed": int(seed),
        "num_dies": int(num_dies),
        "trojans": list(trojans),
        "num_pk_pairs": int(num_pk_pairs),
    })


def fault_sweep_key(*, device: Any, golden: Any, delay_config: Any,
                    seed: int, num_dies: int, trojans: Sequence[str],
                    key: bytes, plaintexts: Sequence[bytes],
                    offsets_ps: Sequence[float], widths_ps: Sequence[float],
                    periods_ps: Sequence[float]) -> str:
    """Key of one glitch-grid fault-injection sweep's ciphertext tensors.

    The grid axes enter the key as the *spec-level* values (empty =
    auto-calibrated on the golden die), so a warm rerun of an
    auto-calibrated sweep hits without paying for the golden build the
    calibration would need.
    """
    return stable_key({
        "kind": "fault_sweep",
        "schema": ARTIFACT_SCHEMA_VERSION,
        "device": device,
        "golden": golden,
        "delay": delay_config,
        "seed": int(seed),
        "num_dies": int(num_dies),
        "trojans": list(trojans),
        "key": key,
        "plaintexts": list(plaintexts),
        "offsets_ps": [float(v) for v in offsets_ps],
        "widths_ps": [float(v) for v in widths_ps],
        "periods_ps": [float(v) for v in periods_ps],
    })


def infected_summary_key(*, device: Any, golden: Any, trojan: str) -> str:
    """Key of one trojan's infected-design area summary."""
    return stable_key({
        "kind": "infected_summary",
        "schema": ARTIFACT_SCHEMA_VERSION,
        "device": device,
        "golden": golden,
        "trojan": str(trojan),
    })


def cell_result_key(*, device: Any, golden: Any,
                    spec_payload: Mapping[str, Any], cell_index: int) -> str:
    """Key of one executed grid cell's result rows.

    ``spec_payload`` must already be stripped of execution-only fields
    (name, workers, trace archiving) — see
    :func:`spec_content_fragment` — so re-running the same physics under
    a different campaign name or worker count resumes instead of
    recomputing.
    """
    return stable_key({
        "kind": "campaign_cell",
        "schema": ARTIFACT_SCHEMA_VERSION,
        "device": device,
        "golden": golden,
        "spec": dict(spec_payload),
        "cell_index": int(cell_index),
    })


#: Spec fields that change how a campaign *executes* but not what its
#: rows contain; they are excluded from content keys.  The supervisor's
#: fault-tolerance knobs (retries, timeout, backoff) belong here: a
#: campaign rerun with a longer timeout must hit the artifacts the
#: impatient run already computed.  ``kernel_backend`` too: every
#: backend (:mod:`repro.backend`) is bit-identical to numpy, so a
#: bitsliced rerun must hit the artifacts the numpy run computed.
EXECUTION_ONLY_SPEC_FIELDS = ("name", "workers", "save_traces",
                              "max_retries", "cell_timeout_s",
                              "retry_backoff_s", "kernel_backend")


def spec_content_fragment(spec_payload: Mapping[str, Any]) -> Dict[str, Any]:
    """The result-determining subset of a campaign-spec dictionary."""
    return {field: value for field, value in spec_payload.items()
            if field not in EXECUTION_ONLY_SPEC_FIELDS}


# -- trace payloads -----------------------------------------------------------


def _pack_trace_group(prefix: str, traces: Sequence[EMTrace],
                      arrays: Dict[str, np.ndarray]) -> None:
    """Add one trace group to ``arrays`` under ``<prefix>::<field>`` keys.

    The field layout is :func:`repro.io.tracefile.traces_to_arrays` —
    the one EMTrace codec, shared with the trace archives.
    """
    for name, value in traces_to_arrays(traces).items():
        arrays[f"{prefix}::{name}"] = value


def _unpack_trace_group(prefix: str,
                        arrays: Mapping[str, np.ndarray]) -> List[EMTrace]:
    marker = f"{prefix}::"
    return traces_from_arrays({name[len(marker):]: value
                               for name, value in arrays.items()
                               if name.startswith(marker)})


def pack_population_traces(golden_traces: Sequence[EMTrace],
                           infected_traces: Mapping[str, Sequence[EMTrace]]
                           ) -> Dict[str, np.ndarray]:
    """Flatten a (golden, per-trojan infected) trace set into npz arrays."""
    arrays: Dict[str, np.ndarray] = {
        "groups": np.array(["golden"] + list(infected_traces)),
    }
    _pack_trace_group("golden", golden_traces, arrays)
    for name, traces in infected_traces.items():
        _pack_trace_group(f"trojan::{name}", traces, arrays)
    return arrays


def unpack_population_traces(arrays: Mapping[str, np.ndarray]
                             ) -> Tuple[List[EMTrace],
                                        Dict[str, List[EMTrace]]]:
    """Inverse of :func:`pack_population_traces`."""
    groups = [str(name) for name in arrays["groups"]]
    golden_traces = _unpack_trace_group("golden", arrays)
    infected_traces = {name: _unpack_trace_group(f"trojan::{name}", arrays)
                       for name in groups if name != "golden"}
    return golden_traces, infected_traces


# -- delay payloads -----------------------------------------------------------


def pack_delay_differences(golden_differences: Sequence[np.ndarray],
                           infected_differences: Mapping[str,
                                                         Sequence[np.ndarray]]
                           ) -> Dict[str, np.ndarray]:
    """Flatten the per-die Eq. (4) difference matrices into npz arrays."""
    arrays: Dict[str, np.ndarray] = {
        "groups": np.array(["golden"] + list(infected_differences)),
        "golden::diff": np.stack([np.asarray(matrix)
                                  for matrix in golden_differences]),
    }
    for name, matrices in infected_differences.items():
        arrays[f"trojan::{name}::diff"] = np.stack(
            [np.asarray(matrix) for matrix in matrices])
    return arrays


def unpack_delay_differences(arrays: Mapping[str, np.ndarray]
                             ) -> Tuple[List[np.ndarray],
                                        Dict[str, List[np.ndarray]]]:
    """Inverse of :func:`pack_delay_differences`."""
    groups = [str(name) for name in arrays["groups"]]
    golden_differences = [matrix.copy() for matrix in arrays["golden::diff"]]
    infected_differences = {
        name: [matrix.copy() for matrix in arrays[f"trojan::{name}::diff"]]
        for name in groups if name != "golden"
    }
    return golden_differences, infected_differences


# -- fault-sweep payloads -----------------------------------------------------


def pack_fault_sweep(axes: Mapping[str, Sequence[float]],
                     plaintexts: np.ndarray,
                     correct: np.ndarray,
                     golden_faulted: np.ndarray,
                     infected_faulted: Mapping[str, np.ndarray]
                     ) -> Dict[str, np.ndarray]:
    """Flatten one glitch-grid sweep into npz arrays.

    ``axes`` holds the *resolved* grid axes (offsets/widths/periods in
    ps — after auto-calibration, not the possibly-empty spec values), so
    a store hit reproduces the exact grid without re-calibrating;
    ``plaintexts``/``correct`` are the ``(N, 16)`` stimulus and
    fault-free ciphertexts, and the faulted tensors are ``(D, G, N,
    16)`` per population.
    """
    arrays: Dict[str, np.ndarray] = {
        "groups": np.array(["golden"] + list(infected_faulted)),
        "axes::offsets_ps": np.asarray(axes["offsets_ps"], dtype=float),
        "axes::widths_ps": np.asarray(axes["widths_ps"], dtype=float),
        "axes::periods_ps": np.asarray(axes["periods_ps"], dtype=float),
        "plaintexts": np.asarray(plaintexts, dtype=np.uint8),
        "correct": np.asarray(correct, dtype=np.uint8),
        "golden::faulted": np.asarray(golden_faulted, dtype=np.uint8),
    }
    for name, tensor in infected_faulted.items():
        arrays[f"trojan::{name}::faulted"] = np.asarray(tensor,
                                                        dtype=np.uint8)
    return arrays


def unpack_fault_sweep(arrays: Mapping[str, np.ndarray]
                       ) -> Tuple[Dict[str, np.ndarray], np.ndarray,
                                  np.ndarray, np.ndarray,
                                  Dict[str, np.ndarray]]:
    """Inverse of :func:`pack_fault_sweep`.

    Returns ``(axes, plaintexts, correct, golden_faulted,
    infected_faulted)``.
    """
    groups = [str(name) for name in arrays["groups"]]
    axes = {
        "offsets_ps": arrays["axes::offsets_ps"].copy(),
        "widths_ps": arrays["axes::widths_ps"].copy(),
        "periods_ps": arrays["axes::periods_ps"].copy(),
    }
    infected_faulted = {
        name: arrays[f"trojan::{name}::faulted"].copy()
        for name in groups if name != "golden"
    }
    return (axes, arrays["plaintexts"].copy(), arrays["correct"].copy(),
            arrays["golden::faulted"].copy(), infected_faulted)
