"""Pluggable array-backend seam for the hot numerical kernels.

The compiled netlist kernels (and, over time, the other hot paths) do
not call ``numpy`` directly for backend-sensitive work: they ask this
module for the *active* :class:`ArrayBackend` and use its ``xp`` array
namespace plus its kernel-selection flags.  Callers — trojan activity
models, the EM simulator's batch acquisition, campaign cells — never
change: selecting a backend per :class:`~repro.campaigns.spec.CampaignSpec`
cell (the ``kernel_backend`` knob / ``--backend`` CLI flag) swaps the
kernel underneath them.

Built-in backends:

``numpy``
    The default: the uint8 one-lane-per-stimulus compiled kernel,
    unchanged — it remains the pinned reference every other backend must
    match bit for bit.
``bitslice``
    The same numpy namespace, but netlist evaluation runs through the
    uint64 bitplane kernel (:mod:`repro.netlist.bitslice`): 64 stimuli
    per machine word, Biham-style.
``cupy``
    The bitplane kernel over CuPy's array namespace (GPU resident).
    Registered but *gated*: selecting it without CuPy installed raises
    :class:`BackendError` — nothing in this repository imports or
    requires CuPy.

Further backends (numba JIT, JAX, ...) drop in through
:func:`register_backend` without touching any kernel caller.

Backend selection is execution-only: every backend must produce results
bit-identical to ``numpy``, so artifact-store content keys ignore the
``kernel_backend`` spec field and a warm store stays warm across
backends.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Tuple, Union

import numpy as np


class BackendError(RuntimeError):
    """Raised when a requested array backend cannot be provided."""


@dataclass(frozen=True)
class ArrayBackend:
    """One array namespace plus kernel-selection flags.

    Attributes
    ----------
    name:
        Registry name of the backend.
    xp:
        The array namespace (``numpy``, ``cupy``, ...).  Kernel code
        routes array creation and ufuncs through this object.
    bitslice:
        When true, netlist logic evaluation runs through the packed
        uint64 bitplane kernel instead of the uint8 lane kernel.
    """

    name: str
    xp: Any = field(repr=False, default=np)
    bitslice: bool = False


def _make_numpy() -> ArrayBackend:
    return ArrayBackend(name="numpy", xp=np, bitslice=False)


def _make_bitslice() -> ArrayBackend:
    return ArrayBackend(name="bitslice", xp=np, bitslice=True)


def _make_cupy() -> ArrayBackend:
    try:
        import cupy  # type: ignore[import-not-found]
    except ImportError as exc:
        raise BackendError(
            "backend 'cupy' requires the cupy package, which is not "
            "installed; use 'numpy' or 'bitslice' instead"
        ) from exc
    return ArrayBackend(name="cupy", xp=cupy, bitslice=True)


#: Name -> factory.  Factories run on first request so optional
#: dependencies (CuPy) are only imported when their backend is selected.
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {
    "numpy": _make_numpy,
    "bitslice": _make_bitslice,
    "cupy": _make_cupy,
}

_CACHE: Dict[str, ArrayBackend] = {}
_LOCK = threading.Lock()


def known_backend_names() -> Tuple[str, ...]:
    """Registered backend names (available or gated), sorted."""
    return tuple(sorted(_FACTORIES))


def register_backend(name: str,
                     factory: Callable[[], ArrayBackend]) -> None:
    """Register (or replace) a backend factory under ``name``.

    The factory runs on first :func:`get_backend` call; it may raise
    :class:`BackendError` to signal a missing optional dependency.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    with _LOCK:
        _FACTORIES[str(name)] = factory
        _CACHE.pop(str(name), None)


def get_backend(name: str) -> ArrayBackend:
    """Resolve a backend by name (raises :class:`BackendError`)."""
    with _LOCK:
        backend = _CACHE.get(name)
        if backend is not None:
            return backend
        factory = _FACTORIES.get(name)
    if factory is None:
        raise BackendError(
            f"unknown array backend {name!r}; known: "
            + ", ".join(known_backend_names())
        )
    backend = factory()
    if not isinstance(backend, ArrayBackend):
        raise BackendError(
            f"backend factory for {name!r} returned {type(backend).__name__}, "
            "expected ArrayBackend"
        )
    with _LOCK:
        _CACHE[name] = backend
    return backend


_DEFAULT = get_backend("numpy")
_ACTIVE = threading.local()


def active_backend() -> ArrayBackend:
    """The backend the kernels currently dispatch on."""
    return getattr(_ACTIVE, "backend", _DEFAULT)


def set_active_backend(backend: Union[str, ArrayBackend]) -> ArrayBackend:
    """Set the active backend; returns the previously active one."""
    if isinstance(backend, str):
        backend = get_backend(backend)
    previous = active_backend()
    _ACTIVE.backend = backend
    return previous


@contextmanager
def use_backend(backend: Union[str, ArrayBackend]) -> Iterator[ArrayBackend]:
    """Scoped backend selection::

        with use_backend("bitslice"):
            values = compiled.evaluate_batch(rows)   # bitplane kernel
    """
    previous = set_active_backend(backend)
    try:
        yield active_backend()
    finally:
        set_active_backend(previous)


# -- small shared kernels ------------------------------------------------------

#: Bits set per byte value — the portable popcount fallback.
_POPCOUNT_LUT = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.uint8)


def popcount(words: np.ndarray, xp: Any = np) -> np.ndarray:
    """Per-element set-bit count of an unsigned integer array (int64).

    Uses ``xp.bitwise_count`` when the namespace provides it (numpy >=
    2.0) and a byte-LUT reduction otherwise, so the helper works on any
    registered array namespace.
    """
    words = xp.asarray(words)
    if hasattr(xp, "bitwise_count"):
        return xp.bitwise_count(words).astype(xp.int64)
    counts = xp.zeros(words.shape, dtype=xp.int64)
    lut = xp.asarray(_POPCOUNT_LUT)
    for shift in range(0, words.dtype.itemsize * 8, 8):
        counts += lut[(words >> words.dtype.type(shift))
                      .astype(xp.uint8)].astype(xp.int64)
    return counts


__all__ = [
    "ArrayBackend",
    "BackendError",
    "active_backend",
    "get_backend",
    "known_backend_names",
    "popcount",
    "register_backend",
    "set_active_backend",
    "use_backend",
]
