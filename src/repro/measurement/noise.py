"""Measurement noise models.

Both measurement chains of the paper fight noise by repetition:

* the delay platform repeats every (plaintext, key) measurement 10 times
  "to lower measurement noise" — the noise term ``dM_r`` of Eq. (2)
  covers metastability resolution, temperature and supply fluctuations;
* the oscilloscope averages every EM trace 1 000 times, and a second
  "setup installation" noise appears when the probe/board are physically
  re-installed between acquisitions (studied in Fig. 5).

This module centralises those noise sources so experiments can control
them (including turning them off) from one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Standard deviation of the per-repetition delay measurement noise (ps).
DEFAULT_DELAY_NOISE_PS = 20.0
#: Standard deviation of the raw (single-shot) EM amplitude noise, in
#: oscilloscope units (the paper's traces span roughly +/- 2e4 units).
DEFAULT_EM_NOISE = 800.0
#: Relative gain error introduced by re-installing the measurement setup.
#: Fig. 5 of the paper shows this effect to be negligible once traces are
#: averaged 1 000 times; the default keeps it an order of magnitude below
#: the process-variation spread.
DEFAULT_SETUP_GAIN_SIGMA = 0.003
#: Additive offset introduced by re-installing the measurement setup.
DEFAULT_SETUP_OFFSET_SIGMA = 10.0


@dataclass
class DelayNoiseModel:
    """Per-repetition noise of the clock-glitch delay measurement."""

    sigma_ps: float = DEFAULT_DELAY_NOISE_PS

    def __post_init__(self) -> None:
        if self.sigma_ps < 0:
            raise ValueError("sigma_ps must be non-negative")

    def sample(self, rng: np.random.Generator, size) -> np.ndarray:
        """Draw noise offsets (ps) of the requested shape."""
        if self.sigma_ps == 0:
            return np.zeros(size)
        return rng.normal(0.0, self.sigma_ps, size=size)


@dataclass
class EMNoiseModel:
    """Noise of the EM acquisition chain.

    Attributes
    ----------
    sigma_single_shot:
        Standard deviation of the amplitude noise of a single raw trace.
    setup_gain_sigma, setup_offset_sigma:
        Spread of the multiplicative / additive perturbation introduced
        every time the physical setup is re-installed.
    """

    sigma_single_shot: float = DEFAULT_EM_NOISE
    setup_gain_sigma: float = DEFAULT_SETUP_GAIN_SIGMA
    setup_offset_sigma: float = DEFAULT_SETUP_OFFSET_SIGMA

    def __post_init__(self) -> None:
        if self.sigma_single_shot < 0:
            raise ValueError("sigma_single_shot must be non-negative")
        if self.setup_gain_sigma < 0 or self.setup_offset_sigma < 0:
            raise ValueError("setup noise sigmas must be non-negative")

    def averaged_sigma(self, num_averages: int) -> float:
        """Residual amplitude noise after averaging ``num_averages`` traces."""
        if num_averages <= 0:
            raise ValueError("num_averages must be positive")
        return self.sigma_single_shot / np.sqrt(num_averages)

    def sample_averaged(self, rng: np.random.Generator, num_samples: int,
                        num_averages: int) -> np.ndarray:
        """Residual noise vector of an averaged trace."""
        sigma = self.averaged_sigma(num_averages)
        if sigma == 0:
            return np.zeros(num_samples)
        return rng.normal(0.0, sigma, size=num_samples)

    def sample_setup_perturbation(self, rng: np.random.Generator
                                  ) -> "tuple[float, float]":
        """Draw a (gain, offset) perturbation for one setup installation."""
        gain = 1.0 + rng.normal(0.0, self.setup_gain_sigma) \
            if self.setup_gain_sigma > 0 else 1.0
        offset = rng.normal(0.0, self.setup_offset_sigma) \
            if self.setup_offset_sigma > 0 else 0.0
        return float(gain), float(offset)
