"""Activity-driven EM trace simulation.

The EM emanation of a synchronous circuit is dominated by the current
pulses drawn on every clock edge; their amplitude tracks the switching
activity of that cycle.  The simulator therefore builds an averaged EM
trace of one AES encryption as follows:

1. the AES round trace gives the per-cycle register switching activity
   of the host (plus a factor for the combinational logic and the key
   schedule it drags along);
2. if the design is infected, the trojan's dormant activity (trigger
   tree and counter toggles, input-pin charging) is evaluated from its
   structural netlist — all cycles of an encryption in one pass of the
   compiled kernel (:mod:`repro.netlist.compiled`) — and added with its
   own probe coupling; this is the paper's "activity offset on a net
   used by the HT";
3. every cycle contributes a damped-oscillation pulse (probe and
   amplifier impulse response) scaled by its activity and by the die's
   EM gain (inter-die process variation);
4. the oscilloscope adds the residual averaged noise, a per-installation
   setup perturbation, and quantises.

The absolute units are arbitrary (calibrated so the trace spans roughly
the +/- 2e4 units of the paper's figures); every comparison the
detection metric performs is relative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..crypto.aes import AES
from ..crypto.batch import BatchedAES, switching_activity_counts
from ..crypto.state import hamming_distance
from .dut import DeviceUnderTest
from .em_probe import Amplifier, EMProbe, probe_impulse_response
from .noise import EMNoiseModel
from .oscilloscope import Oscilloscope

#: Weight of one register-bit toggle in activity units.
REGISTER_TOGGLE_WEIGHT = 1.0
#: Combinational activity dragged along per register toggle (SubBytes /
#: MixColumns avalanche plus the key-schedule datapath).
COMBINATIONAL_ACTIVITY_FACTOR = 3.0
#: Weight of a trojan input-pin toggle relative to a full output toggle.
TROJAN_PIN_TOGGLE_WEIGHT = 0.45
#: Per-cycle activity of one trojan cell's clock/config load.  Every slice
#: the trojan occupies adds clock-tree and configuration load that draws
#: current on every edge regardless of data; this is the component that
#: scales with trojan *size* and drives the HT1/HT2/HT3 detectability
#: ordering of Sec. V.
TROJAN_CLOCK_LOAD_PER_CELL = 0.09
#: Baseline activity present on every cycle (clock tree, control logic).
BASELINE_ACTIVITY = 40.0
#: Conversion from activity units to oscilloscope units before the
#: amplifier (calibrated so a full AES round peaks near 1.5e4 units
#: after the 30 dB amplifier).
ACTIVITY_TO_AMPLITUDE = 1.0
#: Relative die-to-die gain variation applied independently to every clock
#: cycle's emission.  The activity of different rounds maps onto different
#: regions of the die, so each die mis-matches the population mean by a
#: slightly different amount per cycle — this is what makes the |G_j - E(G)|
#: curves of Fig. 6 look jagged rather than like a scaled copy of the trace.
DIE_CYCLE_GAIN_JITTER = 0.03
#: Bounds on the memoised per-(key, plaintext) activity caches.  Long
#: random-plaintext campaigns would otherwise grow them without limit;
#: eviction is oldest-first (insertion order).
HOST_ACTIVITY_CACHE_ENTRIES = 4096
TROJAN_ACTIVITY_CACHE_ENTRIES = 4096


@dataclass
class EMAcquisitionConfig:
    """Static configuration of the EM acquisition bench.

    The activity-model weights are part of the configuration so that the
    ablation benchmarks (and users with different target technologies)
    can explore their influence without touching module constants.
    """

    clock_frequency_mhz: float = 24.0
    pre_trigger_cycles: int = 1
    post_trigger_cycles: int = 2
    probe: EMProbe = field(default_factory=EMProbe)
    amplifier: Amplifier = field(default_factory=Amplifier)
    oscilloscope: Oscilloscope = field(default_factory=Oscilloscope)
    noise: EMNoiseModel = field(default_factory=EMNoiseModel)
    quantise: bool = True
    register_toggle_weight: float = REGISTER_TOGGLE_WEIGHT
    combinational_activity_factor: float = COMBINATIONAL_ACTIVITY_FACTOR
    trojan_pin_toggle_weight: float = TROJAN_PIN_TOGGLE_WEIGHT
    trojan_clock_load_per_cell: float = TROJAN_CLOCK_LOAD_PER_CELL
    baseline_activity: float = BASELINE_ACTIVITY
    activity_to_amplitude: float = ACTIVITY_TO_AMPLITUDE
    die_cycle_gain_jitter: float = DIE_CYCLE_GAIN_JITTER

    def __post_init__(self) -> None:
        if self.clock_frequency_mhz <= 0:
            raise ValueError("clock_frequency_mhz must be positive")
        if self.pre_trigger_cycles < 0 or self.post_trigger_cycles < 0:
            raise ValueError("trigger padding cycles must be non-negative")
        if min(self.register_toggle_weight, self.combinational_activity_factor,
               self.trojan_pin_toggle_weight, self.trojan_clock_load_per_cell,
               self.baseline_activity, self.activity_to_amplitude,
               self.die_cycle_gain_jitter) < 0:
            raise ValueError("activity-model weights must be non-negative")

    @property
    def clock_period_ns(self) -> float:
        return 1000.0 / self.clock_frequency_mhz

    @property
    def samples_per_cycle(self) -> int:
        return self.oscilloscope.samples_for_duration_ns(self.clock_period_ns)

    def total_cycles(self, num_rounds: int) -> int:
        """Cycles in one acquisition: padding + load + ``num_rounds`` rounds."""
        return self.pre_trigger_cycles + 1 + num_rounds + self.post_trigger_cycles

    def total_samples(self, num_rounds: int) -> int:
        return self.total_cycles(num_rounds) * self.samples_per_cycle


@dataclass
class EMTrace:
    """One stored (averaged) EM trace and its acquisition context."""

    samples: np.ndarray
    label: str
    plaintext: bytes
    sample_period_ns: float
    cycle_sample_offsets: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return int(self.samples.size)

    def copy(self) -> "EMTrace":
        return EMTrace(
            samples=self.samples.copy(),
            label=self.label,
            plaintext=self.plaintext,
            sample_period_ns=self.sample_period_ns,
            cycle_sample_offsets=list(self.cycle_sample_offsets),
        )


class EMSimulator:
    """EM trace generator for a DUT running AES encryptions."""

    def __init__(self, config: Optional[EMAcquisitionConfig] = None):
        self.config = config or EMAcquisitionConfig()
        self._kernel = probe_impulse_response(
            self.config.oscilloscope.sample_rate_gsps
        )
        # Memoised per-(key, plaintext) host activity and per-(design,
        # stimulus) trojan activity, reused by the batch paths.  The
        # activity model only depends on the stimulus and the design
        # structure, both immutable once built, so entries never go
        # stale; the design object is kept in the entry so an id() key
        # cannot be recycled while cached.
        self._host_activity_cache: Dict[Tuple[bytes, bytes], List[float]] = {}
        self._trojan_activity_cache: Dict[
            Tuple[int, bytes, bytes, int], Tuple[object, List[float]]
        ] = {}
        #: Per-instance cache bounds (entries; tweakable for tests).
        self.host_activity_cache_entries = HOST_ACTIVITY_CACHE_ENTRIES
        self.trojan_activity_cache_entries = TROJAN_ACTIVITY_CACHE_ENTRIES

    # -- cache management -------------------------------------------------------

    def clear_caches(self) -> None:
        """Drop every memoised host/trojan activity entry."""
        self._host_activity_cache.clear()
        self._trojan_activity_cache.clear()

    @staticmethod
    def _cache_insert(cache: Dict, key, value, max_entries: int) -> None:
        """Insert with oldest-first eviction once ``max_entries`` is hit."""
        if key not in cache:
            while len(cache) >= max(1, max_entries):
                cache.pop(next(iter(cache)))
        cache[key] = value

    # -- activity model ---------------------------------------------------------

    def host_cycle_activities(self, aes: AES, plaintext: bytes) -> List[float]:
        """Per-cycle switching activity of the host AES (load + rounds)."""
        config = self.config
        trace = aes.encrypt_trace(plaintext)
        register_toggles = trace.switching_activities()
        activities = []
        for toggles in register_toggles:
            activities.append(
                config.baseline_activity
                + config.register_toggle_weight * toggles
                * (1.0 + config.combinational_activity_factor)
            )
        return activities

    def trojan_cycle_activities(self, dut: DeviceUnderTest, aes: AES,
                                plaintext: bytes,
                                encryption_index: int = 0) -> List[float]:
        """Per-cycle dormant activity of the inserted trojan (zeros if clean).

        Two components: the data-dependent toggles of the trigger logic
        (evaluated on the trojan's structural netlist — one compiled
        batch per encryption rather than one interpreted walk per
        cycle), and the size-proportional clock/configuration load of
        every trojan cell, which is present on every cycle.
        """
        config = self.config
        trace = aes.encrypt_trace(plaintext)
        num_cycles = 1 + trace.num_rounds
        if dut.trojan is None:
            return [0.0] * num_cycles
        register_states: List[bytes] = [plaintext, trace.initial_state]
        register_states.extend(record.state_out for record in trace.rounds)
        activities = dut.trojan.encryption_activity(
            register_states, encryption_index=encryption_index
        )
        clock_load = (config.trojan_clock_load_per_cell
                      * dut.trojan.cell_count())
        return [clock_load + activity.weighted(config.trojan_pin_toggle_weight)
                for activity in activities]

    def trojan_probe_coupling(self, dut: DeviceUnderTest) -> float:
        """Coupling between the trojan slices and the probe."""
        if dut.infected is None:
            return 0.0
        positions = list(dut.infected.aggressor_positions().values())
        if not positions:
            return 0.0
        centroid = (
            float(np.mean([p[0] for p in positions])),
            float(np.mean([p[1] for p in positions])),
        )
        return self.config.probe.coupling(centroid)

    def host_probe_coupling(self, dut: DeviceUnderTest) -> float:
        """Coupling between the AES block and the probe."""
        return self.config.probe.coupling(
            dut.golden.floorplan.aes_region.center
        )

    def die_cycle_gains(self, dut: DeviceUnderTest, num_cycles: int) -> np.ndarray:
        """Per-cycle EM gain of this die (frozen intra-die PV pattern).

        Each cycle's emission originates from a slightly different region
        of the die, so its die-to-die mismatch differs from cycle to
        cycle.  The realisation is drawn deterministically from the die's
        intra-die seed: re-measuring the same die always reproduces the
        same pattern (this is physical personality, not noise).
        """
        base = dut.em_gain()
        jitter_sigma = self.config.die_cycle_gain_jitter
        if dut.die is None or jitter_sigma == 0.0:
            return np.full(num_cycles, base)
        rng = np.random.default_rng(dut.die.intra_die_seed * 131 + 17)
        jitter = rng.normal(0.0, jitter_sigma, size=num_cycles)
        return base * (1.0 + jitter)

    # -- trace synthesis -----------------------------------------------------------

    def noiseless_trace(self, dut: DeviceUnderTest, plaintext: bytes,
                        key: bytes, encryption_index: int = 0) -> EMTrace:
        """Deterministic emission of one encryption (no noise, no setup error)."""
        config = self.config
        aes = AES(key)
        host_activity = self.host_cycle_activities(aes, plaintext)
        trojan_activity = self.trojan_cycle_activities(
            dut, aes, plaintext, encryption_index
        )
        num_rounds = len(host_activity) - 1
        samples_per_cycle = config.samples_per_cycle
        total_samples = config.total_samples(num_rounds)
        signal = np.zeros(total_samples)

        host_coupling = self.host_probe_coupling(dut)
        trojan_coupling = self.trojan_probe_coupling(dut)
        cycle_gains = self.die_cycle_gains(dut, len(host_activity))
        base_gain = dut.em_gain()

        cycle_offsets: List[int] = []
        for cycle in range(len(host_activity)):
            offset = (config.pre_trigger_cycles + cycle) * samples_per_cycle
            cycle_offsets.append(offset)
            amplitude = cycle_gains[cycle] * config.activity_to_amplitude * (
                host_coupling * host_activity[cycle]
                + trojan_coupling * trojan_activity[cycle]
            )
            end = min(total_samples, offset + self._kernel.size)
            signal[offset:end] += amplitude * self._kernel[: end - offset]

        # Idle cycles still show the clock-tree baseline.
        idle_cycles = list(range(config.pre_trigger_cycles)) + [
            config.pre_trigger_cycles + len(host_activity) + cycle
            for cycle in range(config.post_trigger_cycles)
        ]
        for cycle_index in idle_cycles:
            offset = cycle_index * samples_per_cycle
            amplitude = base_gain * config.activity_to_amplitude * host_coupling \
                * config.baseline_activity
            end = min(total_samples, offset + self._kernel.size)
            signal[offset:end] += amplitude * self._kernel[: end - offset]

        signal = config.amplifier.amplify(signal) + dut.em_offset()
        return EMTrace(
            samples=signal,
            label=dut.label,
            plaintext=bytes(plaintext),
            sample_period_ns=1.0 / config.oscilloscope.sample_rate_gsps,
            cycle_sample_offsets=cycle_offsets,
        )

    def acquire(self, dut: DeviceUnderTest, plaintext: bytes, key: bytes,
                rng: np.random.Generator,
                encryption_index: int = 0,
                new_setup_installation: bool = False) -> EMTrace:
        """Acquire one averaged trace as the oscilloscope would store it.

        Parameters
        ----------
        new_setup_installation:
            When True, a fresh setup (probe repositioning, board
            reinstallation) gain/offset perturbation is drawn — this is
            the effect Fig. 5 demonstrates to be negligible after
            1 000-fold averaging.
        """
        trace = self.noiseless_trace(dut, plaintext, key, encryption_index)
        config = self.config
        signal = trace.samples
        if new_setup_installation:
            gain, offset = config.noise.sample_setup_perturbation(rng)
            signal = signal * gain + offset
        signal = config.oscilloscope.acquire(
            signal,
            noise_sigma_single_shot=config.noise.sigma_single_shot,
            rng=rng,
            quantise=config.quantise,
        )
        acquired = trace.copy()
        acquired.samples = signal
        return acquired

    def acquire_many(self, dut: DeviceUnderTest, plaintexts: Sequence[bytes],
                     key: bytes, rng: np.random.Generator,
                     new_setup_installation: bool = False) -> List[EMTrace]:
        """Acquire one averaged trace per plaintext (random-plaintext campaign).

        This per-plaintext loop is the serial reference
        :meth:`acquire_many_batch` is tested (and benchmarked) against.
        """
        return [
            self.acquire(dut, plaintext, key, rng, encryption_index=index,
                         new_setup_installation=new_setup_installation)
            for index, plaintext in enumerate(plaintexts)
        ]

    # -- batched acquisition -----------------------------------------------------

    def _cached_host_activities(self, aes: AES, plaintext: bytes,
                                key: bytes) -> List[float]:
        cache_key = (bytes(key), bytes(plaintext))
        if cache_key not in self._host_activity_cache:
            self._cache_insert(
                self._host_activity_cache, cache_key,
                self.host_cycle_activities(aes, plaintext),
                self.host_activity_cache_entries,
            )
        return self._host_activity_cache[cache_key]

    def _cached_trojan_activities(self, dut: DeviceUnderTest, aes: AES,
                                  plaintext: bytes, key: bytes,
                                  encryption_index: int) -> List[float]:
        cache_key = (id(dut.design), bytes(key), bytes(plaintext),
                     encryption_index)
        entry = self._trojan_activity_cache.get(cache_key)
        if entry is None or entry[0] is not dut.design:
            activities = self.trojan_cycle_activities(
                dut, aes, plaintext, encryption_index
            )
            entry = (dut.design, activities)
            self._cache_insert(self._trojan_activity_cache, cache_key, entry,
                               self.trojan_activity_cache_entries)
        return entry[1]

    def batch_noiseless_matrix(self, duts: Sequence[DeviceUnderTest],
                               plaintext: bytes, key: bytes,
                               encryption_index: int = 0
                               ) -> "Tuple[np.ndarray, List[int]]":
        """Deterministic emissions of one encryption as a ``(duts, samples)`` matrix.

        The expensive stimulus-dependent work (AES round trace, host and
        trojan switching activity, probe couplings) is evaluated once per
        *design* appearing in ``duts``; only the per-die EM gains and
        offsets differ between rows, so the whole population is
        synthesised in one vectorised NumPy pass.  Every row is
        arithmetically identical to what :meth:`noiseless_trace` produces
        for the same DUT.  Returns ``(signal, cycle_sample_offsets)``;
        no :class:`EMTrace` objects are built — wrap through
        :meth:`batch_noiseless_traces` at a persistence/report boundary.
        """
        if not duts:
            raise ValueError("at least one DUT is required")
        config = self.config
        aes = AES(key)
        host_activity = self._cached_host_activities(aes, plaintext, key)
        host_arr = np.asarray(host_activity, dtype=float)
        num_cycles = len(host_activity)
        num_rounds = num_cycles - 1
        samples_per_cycle = config.samples_per_cycle
        total_samples = config.total_samples(num_rounds)
        num_duts = len(duts)
        kernel = self._kernel

        # Per-design coupled activity, evaluated once per unique design.
        coupled_by_design: Dict[int, Tuple[np.ndarray, float]] = {}
        coupled = np.empty((num_duts, num_cycles))
        host_couplings = np.empty(num_duts)
        for row, dut in enumerate(duts):
            design_key = id(dut.design)
            if design_key not in coupled_by_design:
                trojan_arr = np.asarray(
                    self._cached_trojan_activities(
                        dut, aes, plaintext, key, encryption_index
                    ),
                    dtype=float,
                )
                host_coupling = self.host_probe_coupling(dut)
                coupled_by_design[design_key] = (
                    host_coupling * host_arr
                    + self.trojan_probe_coupling(dut) * trojan_arr,
                    host_coupling,
                )
            coupled[row], host_couplings[row] = coupled_by_design[design_key]

        gains = np.stack(
            [self.die_cycle_gains(dut, num_cycles) for dut in duts]
        )
        base_gains = np.array([dut.em_gain() for dut in duts])
        offsets = np.array([dut.em_offset() for dut in duts])

        amplitudes = gains * config.activity_to_amplitude * coupled
        signal = np.zeros((num_duts, total_samples))
        cycle_offsets: List[int] = []
        for cycle in range(num_cycles):
            offset = (config.pre_trigger_cycles + cycle) * samples_per_cycle
            cycle_offsets.append(offset)
            end = min(total_samples, offset + kernel.size)
            signal[:, offset:end] += (amplitudes[:, cycle, None]
                                      * kernel[None, : end - offset])

        idle_cycles = list(range(config.pre_trigger_cycles)) + [
            config.pre_trigger_cycles + num_cycles + cycle
            for cycle in range(config.post_trigger_cycles)
        ]
        idle_amplitudes = (base_gains * config.activity_to_amplitude
                           * host_couplings * config.baseline_activity)
        for cycle_index in idle_cycles:
            offset = cycle_index * samples_per_cycle
            end = min(total_samples, offset + kernel.size)
            signal[:, offset:end] += (idle_amplitudes[:, None]
                                      * kernel[None, : end - offset])

        signal = config.amplifier.amplify(signal) + offsets[:, None]
        return signal, cycle_offsets

    def batch_noiseless_traces(self, duts: Sequence[DeviceUnderTest],
                               plaintext: bytes, key: bytes,
                               encryption_index: int = 0) -> List[EMTrace]:
        """:meth:`batch_noiseless_matrix` wrapped into :class:`EMTrace` rows."""
        if not duts:
            return []
        signal, cycle_offsets = self.batch_noiseless_matrix(
            duts, plaintext, key, encryption_index
        )
        sample_period_ns = 1.0 / self.config.oscilloscope.sample_rate_gsps
        return [
            EMTrace(
                samples=signal[row].copy(),
                label=dut.label,
                plaintext=bytes(plaintext),
                sample_period_ns=sample_period_ns,
                cycle_sample_offsets=list(cycle_offsets),
            )
            for row, dut in enumerate(duts)
        ]

    def _normalised_rngs(self, duts: Sequence[DeviceUnderTest],
                         rngs: Union[np.random.Generator,
                                     Sequence[np.random.Generator]]
                         ) -> Sequence[np.random.Generator]:
        if isinstance(rngs, np.random.Generator):
            return [rngs] * len(duts)
        rng_list = list(rngs)
        if len(rng_list) != len(duts):
            raise ValueError(
                f"got {len(rng_list)} generators for {len(duts)} DUTs"
            )
        return rng_list

    def acquire_batch_matrix(self, duts: Sequence[DeviceUnderTest],
                             plaintext: bytes, key: bytes,
                             rngs: Union[np.random.Generator,
                                         Sequence[np.random.Generator]],
                             encryption_index: int = 0,
                             new_setup_installation: bool = False
                             ) -> "Tuple[np.ndarray, List[int]]":
        """Acquire a whole population as one ``(duts, samples)`` matrix.

        The tensor-resident core of :meth:`acquire_batch`: per-die setup
        perturbation and averaged noise are drawn row by row in the
        serial generator order, then the whole matrix is quantised in
        one oscilloscope pass.  Row ``d`` is bit-identical to the serial
        :meth:`acquire` of ``duts[d]``; no :class:`EMTrace` objects are
        built.  Returns ``(signal, cycle_sample_offsets)``.
        """
        rng_list = self._normalised_rngs(duts, rngs)
        config = self.config
        signal, cycle_offsets = self.batch_noiseless_matrix(
            duts, plaintext, key, encryption_index
        )
        sigma = config.oscilloscope.effective_noise_sigma(
            config.noise.sigma_single_shot
        )
        for row, rng in enumerate(rng_list):
            trace = signal[row]
            if new_setup_installation:
                gain, offset = config.noise.sample_setup_perturbation(rng)
                trace = trace * gain + offset
            if sigma > 0:
                trace = trace + rng.normal(0.0, sigma, size=trace.shape)
            signal[row] = trace
        if config.quantise:
            signal = config.oscilloscope.quantise(
                signal, lsb=config.oscilloscope.effective_lsb()
            )
        return signal, cycle_offsets

    def acquire_batch(self, duts: Sequence[DeviceUnderTest], plaintext: bytes,
                      key: bytes,
                      rngs: Union[np.random.Generator,
                                  Sequence[np.random.Generator]],
                      encryption_index: int = 0,
                      new_setup_installation: bool = False) -> List[EMTrace]:
        """Acquire one averaged trace per DUT in a single vectorised pass.

        Thin :class:`EMTrace` wrapper over :meth:`acquire_batch_matrix`
        (the persistence/report boundary).

        Parameters
        ----------
        rngs:
            Either one generator per DUT (each die keeps its own noise
            stream, as the population campaigns do) or a single shared
            generator consumed in DUT order.  Both conventions reproduce
            the corresponding serial :meth:`acquire` loop exactly.
        new_setup_installation:
            Applied to every acquisition of the batch (the population
            campaigns re-install the setup for every die).
        """
        if not duts:
            return []
        signal, cycle_offsets = self.acquire_batch_matrix(
            duts, plaintext, key, rngs, encryption_index,
            new_setup_installation,
        )
        sample_period_ns = 1.0 / self.config.oscilloscope.sample_rate_gsps
        return [
            EMTrace(
                samples=signal[row].copy(),
                label=dut.label,
                plaintext=bytes(plaintext),
                sample_period_ns=sample_period_ns,
                cycle_sample_offsets=list(cycle_offsets),
            )
            for row, dut in enumerate(duts)
        ]

    # -- whole-stimulus batched acquisition ---------------------------------------

    def _host_activity_matrix(self, key: bytes, plaintexts: Sequence[bytes],
                              round_states: Optional[np.ndarray] = None
                              ) -> np.ndarray:
        """Per-cycle host activities of a stimulus batch, shape ``(P, C)``.

        One batched-cipher pass covers every plaintext; rows already in
        the per-(key, plaintext) cache are reused and freshly computed
        rows are inserted (bounded), so single-stimulus and batch paths
        share one memo.
        """
        key = bytes(key)
        plaintexts = [bytes(plaintext) for plaintext in plaintexts]
        cached = [self._host_activity_cache.get((key, plaintext))
                  for plaintext in plaintexts]
        if plaintexts and all(row is not None for row in cached):
            return np.asarray(cached, dtype=float)
        config = self.config
        if round_states is None:
            round_states = BatchedAES(key).round_states(plaintexts)
        toggles = switching_activity_counts(round_states)
        matrix = (config.baseline_activity
                  + config.register_toggle_weight * toggles
                  * (1.0 + config.combinational_activity_factor))
        for plaintext, row in zip(plaintexts, matrix):
            self._cache_insert(
                self._host_activity_cache, (key, plaintext),
                [float(value) for value in row],
                self.host_activity_cache_entries,
            )
        return matrix

    def _trojan_activity_matrix(self, dut: DeviceUnderTest, key: bytes,
                                plaintexts: Sequence[bytes],
                                round_states: np.ndarray,
                                encryption_indices: Sequence[int]
                                ) -> np.ndarray:
        """Per-cycle trojan activities of a stimulus batch, shape ``(P, C)``.

        All encryptions' register states go through one compiled-kernel
        evaluation (:meth:`~repro.trojan.base.HardwareTrojan.
        encryption_activity_counts`); zeros for a clean design.
        """
        num_cycles = round_states.shape[1] - 1
        if dut.trojan is None:
            return np.zeros((round_states.shape[0], num_cycles))
        key = bytes(key)
        plaintexts = [bytes(plaintext) for plaintext in plaintexts]
        cached_rows: List[List[float]] = []
        for plaintext, index in zip(plaintexts, encryption_indices):
            entry = self._trojan_activity_cache.get(
                (id(dut.design), key, plaintext, index)
            )
            if entry is None or entry[0] is not dut.design:
                break
            cached_rows.append(entry[1])
        if plaintexts and len(cached_rows) == len(plaintexts):
            return np.asarray(cached_rows, dtype=float)
        config = self.config
        output_toggles, pin_toggles = dut.trojan.encryption_activity_counts(
            round_states, encryption_indices
        )
        clock_load = (config.trojan_clock_load_per_cell
                      * dut.trojan.cell_count())
        matrix = clock_load + (output_toggles
                               + config.trojan_pin_toggle_weight * pin_toggles)
        for plaintext, index, row in zip(plaintexts, encryption_indices,
                                         matrix):
            self._cache_insert(
                self._trojan_activity_cache,
                (id(dut.design), key, plaintext, index),
                (dut.design, [float(value) for value in row]),
                self.trojan_activity_cache_entries,
            )
        return matrix

    def batch_noiseless_traces_many(self, duts: Sequence[DeviceUnderTest],
                                    plaintexts: Sequence[bytes], key: bytes,
                                    encryption_indices: Optional[Sequence[int]]
                                    = None
                                    ) -> "Tuple[np.ndarray, List[int]]":
        """Deterministic emissions of a whole (plaintext x DUT) grid.

        The batched cipher prices every stimulus in one pass, each
        unique design's trojan activity comes from one compiled-kernel
        evaluation over all encryptions' register states, and the pulse
        synthesis fills a ``(plaintexts, duts, samples)`` tensor in a
        handful of broadcast operations.  Every ``[p, d]`` plane is
        arithmetically identical to ``noiseless_trace(duts[d],
        plaintexts[p], key, encryption_index=p)``.

        Returns ``(signal, cycle_sample_offsets)``.
        """
        config = self.config
        plaintexts = [bytes(plaintext) for plaintext in plaintexts]
        num_plaintexts = len(plaintexts)
        num_duts = len(duts)
        if encryption_indices is None:
            encryption_indices = list(range(num_plaintexts))
        else:
            encryption_indices = [int(i) for i in encryption_indices]
            if len(encryption_indices) != num_plaintexts:
                raise ValueError(
                    f"got {len(encryption_indices)} encryption indices for "
                    f"{num_plaintexts} plaintexts"
                )
        if not num_duts or not num_plaintexts:
            raise ValueError("at least one DUT and one plaintext are required")

        round_states = BatchedAES(key).round_states(plaintexts)
        host_matrix = self._host_activity_matrix(key, plaintexts, round_states)
        num_cycles = host_matrix.shape[1]
        num_rounds = num_cycles - 1
        samples_per_cycle = config.samples_per_cycle
        total_samples = config.total_samples(num_rounds)
        kernel = self._kernel

        # Per-design coupled activity, one compiled pass per unique design.
        coupled_by_design: Dict[int, Tuple[np.ndarray, float]] = {}
        coupled = np.empty((num_plaintexts, num_duts, num_cycles))
        host_couplings = np.empty(num_duts)
        for column, dut in enumerate(duts):
            design_key = id(dut.design)
            if design_key not in coupled_by_design:
                trojan_matrix = self._trojan_activity_matrix(
                    dut, key, plaintexts, round_states, encryption_indices
                )
                host_coupling = self.host_probe_coupling(dut)
                coupled_by_design[design_key] = (
                    host_coupling * host_matrix
                    + self.trojan_probe_coupling(dut) * trojan_matrix,
                    host_coupling,
                )
            coupled[:, column], host_couplings[column] = \
                coupled_by_design[design_key]

        gains = np.stack(
            [self.die_cycle_gains(dut, num_cycles) for dut in duts]
        )
        base_gains = np.array([dut.em_gain() for dut in duts])
        offsets = np.array([dut.em_offset() for dut in duts])

        amplitudes = (gains[None, :, :] * config.activity_to_amplitude
                      * coupled)
        signal = np.zeros((num_plaintexts, num_duts, total_samples))
        cycle_offsets: List[int] = []
        for cycle in range(num_cycles):
            offset = (config.pre_trigger_cycles + cycle) * samples_per_cycle
            cycle_offsets.append(offset)
            end = min(total_samples, offset + kernel.size)
            signal[:, :, offset:end] += (amplitudes[:, :, cycle, None]
                                         * kernel[None, None, : end - offset])

        idle_cycles = list(range(config.pre_trigger_cycles)) + [
            config.pre_trigger_cycles + num_cycles + cycle
            for cycle in range(config.post_trigger_cycles)
        ]
        idle_amplitudes = (base_gains * config.activity_to_amplitude
                           * host_couplings * config.baseline_activity)
        for cycle_index in idle_cycles:
            offset = cycle_index * samples_per_cycle
            end = min(total_samples, offset + kernel.size)
            signal[:, :, offset:end] += (idle_amplitudes[None, :, None]
                                         * kernel[None, None, : end - offset])

        signal = config.amplifier.amplify(signal) + offsets[None, :, None]
        return signal, cycle_offsets

    def acquire_many_batch_tensor(self, duts: Sequence[DeviceUnderTest],
                                  plaintexts: Sequence[bytes], key: bytes,
                                  rngs: Union[np.random.Generator,
                                              Sequence[np.random.Generator]],
                                  new_setup_installation: bool = False
                                  ) -> "Tuple[np.ndarray, List[int]]":
        """Acquire the (plaintext x DUT) grid as one ``(P, D, S)`` tensor.

        The tensor-resident core of :meth:`acquire_many_batch`: noise is
        drawn DUT-major / plaintext-minor in the serial generator order,
        then one oscilloscope pass quantises the whole tensor.  Plane
        ``[p, d]`` is bit-identical to the serial
        ``acquire(duts[d], plaintexts[p], ...)``; no :class:`EMTrace`
        objects are built.  Returns ``(signal, cycle_sample_offsets)``.
        """
        rng_list = self._normalised_rngs(duts, rngs)
        if not plaintexts:
            raise ValueError("at least one plaintext is required")
        config = self.config
        signal, cycle_offsets = self.batch_noiseless_traces_many(
            duts, plaintexts, key
        )
        sigma = config.oscilloscope.effective_noise_sigma(
            config.noise.sigma_single_shot
        )
        num_plaintexts = len(plaintexts)
        for column, rng in enumerate(rng_list):
            for row in range(num_plaintexts):
                trace = signal[row, column]
                if new_setup_installation:
                    gain, offset = config.noise.sample_setup_perturbation(rng)
                    trace = trace * gain + offset
                if sigma > 0:
                    trace = trace + rng.normal(0.0, sigma, size=trace.shape)
                signal[row, column] = trace
        if config.quantise:
            signal = config.oscilloscope.quantise(
                signal, lsb=config.oscilloscope.effective_lsb()
            )
        return signal, cycle_offsets

    def acquire_many_batch(self, duts: Sequence[DeviceUnderTest],
                           plaintexts: Sequence[bytes], key: bytes,
                           rngs: Union[np.random.Generator,
                                       Sequence[np.random.Generator]],
                           new_setup_installation: bool = False
                           ) -> List[List[EMTrace]]:
        """Acquire the whole (plaintext x DUT) grid in one vectorised pass.

        Thin :class:`EMTrace` wrapper over
        :meth:`acquire_many_batch_tensor` (the persistence/report
        boundary).  Returns one list per DUT (``result[d][p]``),
        bit-identical to calling the serial :meth:`acquire_many` per
        DUT.

        Parameters
        ----------
        rngs:
            Either one generator per DUT (each die keeps its own noise
            stream, consumed across the plaintexts in order) or a single
            shared generator consumed DUT-major / plaintext-minor — both
            conventions reproduce ``[acquire_many(dut, plaintexts, key,
            rng) for dut in duts]`` exactly.
        new_setup_installation:
            Applied to every acquisition of the grid (the population
            campaigns re-install the setup for every trace).
        """
        self._normalised_rngs(duts, rngs)
        if not duts:
            return []
        if not plaintexts:
            return [[] for _ in duts]
        signal, cycle_offsets = self.acquire_many_batch_tensor(
            duts, plaintexts, key, rngs, new_setup_installation
        )
        sample_period_ns = 1.0 / self.config.oscilloscope.sample_rate_gsps
        return [
            [
                EMTrace(
                    samples=signal[row, column].copy(),
                    label=dut.label,
                    plaintext=bytes(plaintexts[row]),
                    sample_period_ns=sample_period_ns,
                    cycle_sample_offsets=list(cycle_offsets),
                )
                for row in range(len(plaintexts))
            ]
            for column, dut in enumerate(duts)
        ]
