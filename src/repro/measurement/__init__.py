"""Measurement substrate: clock glitching, fault injection, delay and EM benches."""

from .clock import (
    ClockGlitchGenerator,
    DEFAULT_GLITCH_STEP_PS,
    DEFAULT_GLITCH_STEPS,
    TimingBudget,
)
from .delay_meter import (
    DelayMeasurement,
    DelayMeasurementConfig,
    PairMeasurement,
    PathDelayMeter,
    PlaintextKeyPair,
    generate_pk_pairs,
)
from .dut import DeviceUnderTest
from .em_probe import Amplifier, EMProbe, probe_impulse_response
from .em_simulator import EMAcquisitionConfig, EMSimulator, EMTrace
from .fault_injection import SetupViolationFaultModel
from .noise import DelayNoiseModel, EMNoiseModel
from .oscilloscope import Oscilloscope

__all__ = [
    "ClockGlitchGenerator",
    "DEFAULT_GLITCH_STEP_PS",
    "DEFAULT_GLITCH_STEPS",
    "TimingBudget",
    "DelayMeasurement",
    "DelayMeasurementConfig",
    "PairMeasurement",
    "PathDelayMeter",
    "PlaintextKeyPair",
    "generate_pk_pairs",
    "DeviceUnderTest",
    "Amplifier",
    "EMProbe",
    "probe_impulse_response",
    "EMAcquisitionConfig",
    "EMSimulator",
    "EMTrace",
    "SetupViolationFaultModel",
    "DelayNoiseModel",
    "EMNoiseModel",
    "Oscilloscope",
]
