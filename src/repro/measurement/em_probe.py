"""EM probe and amplifier models.

The paper's EM chain is a Langer RFU-5-2 near-field probe (capturing the
*global* EM activity of the chip), a 30 dB Langer power amplifier and an
Agilent 5 GS/s oscilloscope.  The probe and amplifier are modelled by:

* a spatial coupling factor between each activity source (a region of
  slices) and the probe position — broad for a global probe,
* a band-pass impulse response: every current pulse drawn on a clock
  edge rings through the probe/amplifier chain as a damped oscillation,
* a linear gain (the amplifier's 30 dB).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Default ringing frequency of the probe response, in MHz.
DEFAULT_RINGING_FREQUENCY_MHZ = 200.0
#: Default decay constant of the probe response, in ns.
DEFAULT_DECAY_NS = 4.0
#: Default spatial decay of the probe coupling, in slices (a global probe
#: sees the whole die almost uniformly).
DEFAULT_COUPLING_DECAY_SLICES = 120.0


@dataclass(frozen=True)
class EMProbe:
    """Near-field EM probe above the package.

    Parameters
    ----------
    position:
        Probe position in slice coordinates (row, column).  The paper
        keeps the probe position fixed while swapping dies in the ZIF
        socket, which is why the position is part of the bench, not of
        the DUT.
    coupling_decay_slices:
        Spatial selectivity; large values model a global probe.
    gain:
        Conversion factor from switching activity to probe output
        amplitude (arbitrary units).
    """

    position: Tuple[float, float] = (40.0, 30.0)
    coupling_decay_slices: float = DEFAULT_COUPLING_DECAY_SLICES
    gain: float = 1.0

    def __post_init__(self) -> None:
        if self.coupling_decay_slices <= 0:
            raise ValueError("coupling_decay_slices must be positive")
        if self.gain <= 0:
            raise ValueError("gain must be positive")

    def coupling(self, source_position: Tuple[float, float]) -> float:
        """Coupling weight between an activity source and the probe."""
        distance = math.hypot(source_position[0] - self.position[0],
                              source_position[1] - self.position[1])
        return self.gain * math.exp(-distance / self.coupling_decay_slices)


@dataclass(frozen=True)
class Amplifier:
    """Wide-band power amplifier (the paper uses a 30 dB Langer EMV)."""

    gain_db: float = 30.0

    def __post_init__(self) -> None:
        if self.gain_db < 0:
            raise ValueError("gain_db must be non-negative")

    @property
    def linear_gain(self) -> float:
        """Voltage gain corresponding to ``gain_db``."""
        return 10.0 ** (self.gain_db / 20.0)

    def amplify(self, signal: np.ndarray) -> np.ndarray:
        """Apply the amplifier gain to a signal."""
        return np.asarray(signal, dtype=float) * self.linear_gain


def probe_impulse_response(sample_rate_gsps: float,
                           ringing_frequency_mhz: float = DEFAULT_RINGING_FREQUENCY_MHZ,
                           decay_ns: float = DEFAULT_DECAY_NS,
                           duration_ns: float = 20.0) -> np.ndarray:
    """Impulse response of the probe/amplifier chain.

    A current pulse on a clock edge appears at the oscilloscope as a
    damped sinusoid; this kernel is convolved with the per-cycle
    activity impulses by the EM simulator.
    """
    if sample_rate_gsps <= 0:
        raise ValueError("sample_rate_gsps must be positive")
    if decay_ns <= 0 or duration_ns <= 0:
        raise ValueError("decay_ns and duration_ns must be positive")
    num_samples = max(1, int(round(duration_ns * sample_rate_gsps)))
    t_ns = np.arange(num_samples) / sample_rate_gsps
    omega = 2.0 * math.pi * ringing_frequency_mhz * 1e-3  # rad per ns
    response = np.exp(-t_ns / decay_ns) * np.sin(omega * t_ns)
    # Normalise the peak so the simulator's activity scale is independent
    # of the ringing parameters.
    peak = np.max(np.abs(response))
    if peak > 0:
        response = response / peak
    return response
