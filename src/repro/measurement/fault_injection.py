"""Setup-violation fault model (clock-glitch fault injection).

Shortening the clock period of the attacked round below the arrival
time of a flip-flop's data input violates its setup condition (Eq. 1).
The flip-flop then either keeps its stale value or resolves to a random
value through metastability.  The paper exploits exactly this: the
glitched round produces *faulted ciphertexts*, and the step at which
each bit starts to fault is the per-bit path-delay estimate.

:class:`SetupViolationFaultModel` turns per-bit arrival times (from the
two-vector timing simulation) and a glitched clock period into a faulted
ciphertext, with a metastability window and stale/random resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..crypto.state import BLOCK_BITS, bits_to_bytes, bytes_to_bits
from .clock import TimingBudget

#: Width of the metastability window, in ps: when the slack magnitude is
#: within this window the capture is probabilistic rather than clean.
DEFAULT_METASTABILITY_WINDOW_PS = 40.0
#: Probability that a violated flip-flop keeps its stale (previous) value
#: rather than resolving to a random value.
DEFAULT_STALE_CAPTURE_PROBABILITY = 0.8


@dataclass
class SetupViolationFaultModel:
    """Behavioural model of setup violations at the ciphertext register.

    Parameters
    ----------
    budget:
        Register timing parameters (clk2q, setup, skew, jitter).
    metastability_window_ps:
        Transition band around the violation threshold in which capture
        becomes probabilistic.
    stale_capture_probability:
        Probability that a violated bit keeps its previous value instead
        of resolving randomly.
    """

    budget: TimingBudget = field(default_factory=TimingBudget)
    metastability_window_ps: float = DEFAULT_METASTABILITY_WINDOW_PS
    stale_capture_probability: float = DEFAULT_STALE_CAPTURE_PROBABILITY

    def __post_init__(self) -> None:
        if self.metastability_window_ps < 0:
            raise ValueError("metastability_window_ps must be non-negative")
        if not 0.0 <= self.stale_capture_probability <= 1.0:
            raise ValueError("stale_capture_probability must be in [0, 1]")

    # -- per-bit behaviour ------------------------------------------------------

    def violation_probability(self, arrival_ps: Optional[float],
                              clock_period_ps: float) -> float:
        """Probability that a bit with this arrival time is mis-captured.

        ``None`` arrival means the bit did not toggle this cycle: its
        stale value equals its final value, so no observable violation.

        Zero slack is a setup violation: the model is a clean step
        function at ``slack <= 0`` whatever the metastability window, so
        a zero-width window degenerates to exactly that step instead of
        leaving the ``slack == 0`` boundary on the no-violation side.
        """
        if arrival_ps is None:
            return 0.0
        slack = self.budget.setup_slack_ps(clock_period_ps, arrival_ps)
        if slack <= 0.0:
            return 1.0
        if slack >= self.metastability_window_ps:
            return 0.0
        return 1.0 - slack / self.metastability_window_ps

    def violation_probabilities(self, arrival_ps: np.ndarray,
                                clock_period_ps: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`violation_probability` over arrival arrays.

        ``arrival_ps`` and ``clock_period_ps`` are broadcast together;
        NaN arrivals (bits that do not toggle) give probability 0, and
        the zero-window model is the same step function at
        ``slack <= 0`` as the scalar reference.  Every entry equals
        :meth:`violation_probability` of the matching scalars.
        """
        arrivals = np.asarray(arrival_ps, dtype=float)
        periods = np.asarray(clock_period_ps, dtype=float)
        required = (self.budget.clk2q_ps + arrivals + self.budget.setup_ps
                    - self.budget.skew_ps + self.budget.jitter_ps)
        slack = periods - required
        window = self.metastability_window_ps
        if window > 0:
            probability = np.clip(1.0 - slack / window, 0.0, 1.0)
        else:
            probability = (slack <= 0.0).astype(float)
        return np.where(np.isnan(arrivals), 0.0, probability)

    def capture_bit(self, correct_bit: int, stale_bit: int,
                    arrival_ps: Optional[float], clock_period_ps: float,
                    rng: np.random.Generator) -> int:
        """Value captured by one flip-flop at the glitched clock edge."""
        probability = self.violation_probability(arrival_ps, clock_period_ps)
        if probability <= 0.0 or rng.random() >= probability:
            return correct_bit
        if rng.random() < self.stale_capture_probability:
            return stale_bit
        return int(rng.integers(0, 2))

    # -- block-level behaviour ----------------------------------------------------

    def faulted_ciphertext(self, correct_ciphertext: Sequence[int],
                           stale_state: Sequence[int],
                           arrival_ps_per_bit: Sequence[Optional[float]],
                           clock_period_ps: float,
                           rng: np.random.Generator) -> bytes:
        """Ciphertext captured when the attacked round runs at ``clock_period_ps``.

        Parameters
        ----------
        correct_ciphertext:
            The ciphertext the round would produce with a safe clock.
        stale_state:
            The value the ciphertext register held before the glitched
            edge (the previous round's register content).
        arrival_ps_per_bit:
            Arrival time of each ciphertext bit (paper bit order), None
            for bits that do not toggle.
        """
        correct_bits = bytes_to_bits(correct_ciphertext)
        stale_bits = bytes_to_bits(stale_state)
        if len(arrival_ps_per_bit) != BLOCK_BITS:
            raise ValueError(
                f"expected {BLOCK_BITS} arrival times, got {len(arrival_ps_per_bit)}"
            )
        captured: List[int] = []
        for bit_index in range(BLOCK_BITS):
            captured.append(
                self.capture_bit(
                    correct_bits[bit_index],
                    stale_bits[bit_index],
                    arrival_ps_per_bit[bit_index],
                    clock_period_ps,
                    rng,
                )
            )
        return bits_to_bytes(captured)

    def faulted_bit_mask(self, correct_ciphertext: Sequence[int],
                         faulted_ciphertext: Sequence[int]) -> np.ndarray:
        """Boolean mask (paper bit order) of bits that differ from the correct value."""
        correct_bits = np.array(bytes_to_bits(correct_ciphertext), dtype=bool)
        observed_bits = np.array(bytes_to_bits(faulted_ciphertext), dtype=bool)
        return correct_bits ^ observed_bits

    # -- population-level behaviour ------------------------------------------------

    def faulted_bits_population(self, correct_bits: np.ndarray,
                                stale_bits: np.ndarray,
                                arrival_ps: np.ndarray,
                                clock_period_ps: np.ndarray,
                                rng: np.random.Generator) -> np.ndarray:
        """Captured bits of a whole faulted-encryption population, one pass.

        Vectorised capture model for glitch campaigns: every
        (grid point, stimulus, bit) of the population is resolved in a
        handful of array passes instead of one :meth:`capture_bit` call
        per bit.  The inputs broadcast together to a common
        ``(..., 128)`` shape (``clock_period_ps`` broadcasts against the
        leading axes — pass e.g. ``periods[:, None, None]`` to sweep a
        grid axis over stimuli); NaN arrivals mark bits that do not
        toggle and are therefore never observably faulted.

        The rng layout is fixed — three full-population draws, in order:
        a violation uniform, a stale-vs-random resolution uniform, and a
        uint8 random capture bit per entry.
        :meth:`faulted_bits_population_serial` consumes the stream
        identically and is the bit-identical serial reference this
        kernel is tested against; the scalar :meth:`capture_bit` walk
        stays the behavioural specification (same per-bit law, but its
        conditional draws consume the stream in a different order).
        """
        correct = np.asarray(correct_bits, dtype=np.uint8)
        stale = np.asarray(stale_bits, dtype=np.uint8)
        probability = self.violation_probabilities(
            arrival_ps, np.asarray(clock_period_ps, dtype=float)[..., None]
        )
        shape = np.broadcast_shapes(correct.shape, stale.shape,
                                    probability.shape)
        if not shape or shape[-1] != BLOCK_BITS:
            raise ValueError(
                f"population shapes must broadcast to (..., {BLOCK_BITS}), "
                f"got {shape}"
            )
        violation_draw = rng.random(size=shape)
        resolution_draw = rng.random(size=shape)
        random_bits = rng.integers(0, 2, size=shape, dtype=np.uint8)
        violated = violation_draw < probability
        resolved = np.where(resolution_draw < self.stale_capture_probability,
                            np.broadcast_to(stale, shape),
                            random_bits)
        return np.where(violated, resolved,
                        np.broadcast_to(correct, shape)).astype(np.uint8)

    def faulted_bits_population_serial(self, correct_bits: np.ndarray,
                                       stale_bits: np.ndarray,
                                       arrival_ps: np.ndarray,
                                       clock_period_ps: np.ndarray,
                                       rng: np.random.Generator) -> np.ndarray:
        """Serial reference of :meth:`faulted_bits_population`.

        Same rng stream layout (three whole-population draws up front),
        then one scalar :meth:`violation_probability` /
        :meth:`capture_bit` decision per entry in C order — bit-identical
        to the vectorised kernel by construction, kept as the pinned
        reference the equivalence tests compare against.
        """
        correct = np.asarray(correct_bits, dtype=np.uint8)
        stale = np.asarray(stale_bits, dtype=np.uint8)
        arrivals = np.asarray(arrival_ps, dtype=float)
        periods = np.asarray(clock_period_ps, dtype=float)[..., None]
        shape = np.broadcast_shapes(
            correct.shape, stale.shape,
            np.broadcast(arrivals, periods).shape,
        )
        violation_draw = rng.random(size=shape)
        resolution_draw = rng.random(size=shape)
        random_bits = rng.integers(0, 2, size=shape, dtype=np.uint8)
        correct_b = np.broadcast_to(correct, shape)
        stale_b = np.broadcast_to(stale, shape)
        arrivals_b = np.broadcast_to(arrivals, shape)
        periods_b = np.broadcast_to(periods, shape)
        captured = np.empty(shape, dtype=np.uint8)
        for index in np.ndindex(shape):
            arrival = arrivals_b[index]
            probability = self.violation_probability(
                None if np.isnan(arrival) else float(arrival),
                float(periods_b[index]),
            )
            if violation_draw[index] >= probability:
                captured[index] = correct_b[index]
            elif resolution_draw[index] < self.stale_capture_probability:
                captured[index] = stale_b[index]
            else:
                captured[index] = random_bits[index]
        return captured

    def faulted_ciphertext_population(self, correct_ciphertexts: np.ndarray,
                                      stale_states: np.ndarray,
                                      arrival_ps: np.ndarray,
                                      clock_period_ps: np.ndarray,
                                      rng: np.random.Generator) -> np.ndarray:
        """Faulted ciphertext bytes of a whole population, one pass.

        Byte-level wrapper over :meth:`faulted_bits_population`:
        ``correct_ciphertexts`` and ``stale_states`` are ``(..., 16)``
        uint8 blocks, expanded to paper bit order (MSB of byte 0 first)
        with :func:`numpy.unpackbits`, captured through the vectorised
        kernel and packed back to ``(..., 16)`` uint8 ciphertexts.
        """
        correct = np.asarray(correct_ciphertexts, dtype=np.uint8)
        stale = np.asarray(stale_states, dtype=np.uint8)
        captured = self.faulted_bits_population(
            np.unpackbits(correct, axis=-1),
            np.unpackbits(stale, axis=-1),
            arrival_ps, clock_period_ps, rng,
        )
        return np.packbits(captured, axis=-1)
