"""Setup-violation fault model (clock-glitch fault injection).

Shortening the clock period of the attacked round below the arrival
time of a flip-flop's data input violates its setup condition (Eq. 1).
The flip-flop then either keeps its stale value or resolves to a random
value through metastability.  The paper exploits exactly this: the
glitched round produces *faulted ciphertexts*, and the step at which
each bit starts to fault is the per-bit path-delay estimate.

:class:`SetupViolationFaultModel` turns per-bit arrival times (from the
two-vector timing simulation) and a glitched clock period into a faulted
ciphertext, with a metastability window and stale/random resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..crypto.state import BLOCK_BITS, bits_to_bytes, bytes_to_bits
from .clock import TimingBudget

#: Width of the metastability window, in ps: when the slack magnitude is
#: within this window the capture is probabilistic rather than clean.
DEFAULT_METASTABILITY_WINDOW_PS = 40.0
#: Probability that a violated flip-flop keeps its stale (previous) value
#: rather than resolving to a random value.
DEFAULT_STALE_CAPTURE_PROBABILITY = 0.8


@dataclass
class SetupViolationFaultModel:
    """Behavioural model of setup violations at the ciphertext register.

    Parameters
    ----------
    budget:
        Register timing parameters (clk2q, setup, skew, jitter).
    metastability_window_ps:
        Transition band around the violation threshold in which capture
        becomes probabilistic.
    stale_capture_probability:
        Probability that a violated bit keeps its previous value instead
        of resolving randomly.
    """

    budget: TimingBudget = TimingBudget()
    metastability_window_ps: float = DEFAULT_METASTABILITY_WINDOW_PS
    stale_capture_probability: float = DEFAULT_STALE_CAPTURE_PROBABILITY

    def __post_init__(self) -> None:
        if self.metastability_window_ps < 0:
            raise ValueError("metastability_window_ps must be non-negative")
        if not 0.0 <= self.stale_capture_probability <= 1.0:
            raise ValueError("stale_capture_probability must be in [0, 1]")

    # -- per-bit behaviour ------------------------------------------------------

    def violation_probability(self, arrival_ps: Optional[float],
                              clock_period_ps: float) -> float:
        """Probability that a bit with this arrival time is mis-captured.

        ``None`` arrival means the bit did not toggle this cycle: its
        stale value equals its final value, so no observable violation.
        """
        if arrival_ps is None:
            return 0.0
        slack = self.budget.setup_slack_ps(clock_period_ps, arrival_ps)
        if slack >= self.metastability_window_ps:
            return 0.0
        if slack <= 0.0:
            return 1.0
        if self.metastability_window_ps == 0.0:
            return 0.0
        return 1.0 - slack / self.metastability_window_ps

    def capture_bit(self, correct_bit: int, stale_bit: int,
                    arrival_ps: Optional[float], clock_period_ps: float,
                    rng: np.random.Generator) -> int:
        """Value captured by one flip-flop at the glitched clock edge."""
        probability = self.violation_probability(arrival_ps, clock_period_ps)
        if probability <= 0.0 or rng.random() >= probability:
            return correct_bit
        if rng.random() < self.stale_capture_probability:
            return stale_bit
        return int(rng.integers(0, 2))

    # -- block-level behaviour ----------------------------------------------------

    def faulted_ciphertext(self, correct_ciphertext: Sequence[int],
                           stale_state: Sequence[int],
                           arrival_ps_per_bit: Sequence[Optional[float]],
                           clock_period_ps: float,
                           rng: np.random.Generator) -> bytes:
        """Ciphertext captured when the attacked round runs at ``clock_period_ps``.

        Parameters
        ----------
        correct_ciphertext:
            The ciphertext the round would produce with a safe clock.
        stale_state:
            The value the ciphertext register held before the glitched
            edge (the previous round's register content).
        arrival_ps_per_bit:
            Arrival time of each ciphertext bit (paper bit order), None
            for bits that do not toggle.
        """
        correct_bits = bytes_to_bits(correct_ciphertext)
        stale_bits = bytes_to_bits(stale_state)
        if len(arrival_ps_per_bit) != BLOCK_BITS:
            raise ValueError(
                f"expected {BLOCK_BITS} arrival times, got {len(arrival_ps_per_bit)}"
            )
        captured: List[int] = []
        for bit_index in range(BLOCK_BITS):
            captured.append(
                self.capture_bit(
                    correct_bits[bit_index],
                    stale_bits[bit_index],
                    arrival_ps_per_bit[bit_index],
                    clock_period_ps,
                    rng,
                )
            )
        return bits_to_bytes(captured)

    def faulted_bit_mask(self, correct_ciphertext: Sequence[int],
                         faulted_ciphertext: Sequence[int]) -> np.ndarray:
        """Boolean mask (paper bit order) of bits that differ from the correct value."""
        correct_bits = np.array(bytes_to_bits(correct_ciphertext), dtype=bool)
        observed_bits = np.array(bytes_to_bits(faulted_ciphertext), dtype=bool)
        return correct_bits ^ observed_bits
