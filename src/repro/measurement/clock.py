"""Clock generation and clock-glitch sweep.

The delay-measurement platform of the paper uses an external FPGA board
as a clock generator able to shorten a single clock period (a "glitch")
of the device under test.  The glitched period is decreased iteratively
in 35 ps steps (51 decrements in the experiments) until ciphertext bits
start to fault on the attacked round.

This module provides:

* :class:`TimingBudget` — the synchronous timing constraint of Eq. (1)
  and Fig. 1 (setup condition of a register-to-register path),
* :class:`ClockGlitchGenerator` — the swept glitch period sequence,
* :class:`GlitchPulse` — one (offset, width) glitch pulse and its
  effective capture period, the per-point parameterisation of the
  attack-campaign glitch grids (:mod:`repro.attacks`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

#: Paper value: the glitch period decreases in 35 ps steps.
DEFAULT_GLITCH_STEP_PS = 35.0
#: Paper value: 51 decrease steps were performed.
DEFAULT_GLITCH_STEPS = 51

#: Representative register timing parameters for the 65/90 nm FPGAs used
#: (clock-to-output, setup and hold of a slice flip-flop, in ps).
DEFAULT_CLK2Q_PS = 400.0
DEFAULT_SETUP_PS = 180.0
DEFAULT_HOLD_PS = 100.0
DEFAULT_SKEW_PS = 50.0
DEFAULT_JITTER_PS = 25.0


@dataclass(frozen=True)
class TimingBudget:
    """Synchronous timing constraint of one register-to-register stage.

    Equation (1) of the paper:
    ``Tclk > Dclk2q + DpMax + Tsetup - Tskew + Tjitter``.
    """

    clk2q_ps: float = DEFAULT_CLK2Q_PS
    setup_ps: float = DEFAULT_SETUP_PS
    hold_ps: float = DEFAULT_HOLD_PS
    skew_ps: float = DEFAULT_SKEW_PS
    jitter_ps: float = DEFAULT_JITTER_PS

    def __post_init__(self) -> None:
        if min(self.clk2q_ps, self.setup_ps, self.hold_ps) < 0:
            raise ValueError("timing parameters must be non-negative")

    def required_period_ps(self, propagation_ps: float) -> float:
        """Minimum clock period for a path of delay ``propagation_ps``."""
        return (self.clk2q_ps + propagation_ps + self.setup_ps
                - self.skew_ps + self.jitter_ps)

    def setup_slack_ps(self, clock_period_ps: float, propagation_ps: float) -> float:
        """Setup slack (positive = the data arrives in time)."""
        return clock_period_ps - self.required_period_ps(propagation_ps)

    def violates_setup(self, clock_period_ps: float, propagation_ps: float) -> bool:
        """True if the stage violates its setup condition at that period."""
        return self.setup_slack_ps(clock_period_ps, propagation_ps) < 0.0

    def max_propagation_ps(self, clock_period_ps: float) -> float:
        """Largest path delay that still meets setup at ``clock_period_ps``."""
        return (clock_period_ps - self.clk2q_ps - self.setup_ps
                + self.skew_ps - self.jitter_ps)


#: Pulses narrower than this are absorbed by the clock distribution
#: network and never reach the registers (no premature capture edge).
DEFAULT_MIN_PULSE_WIDTH_PS = 500.0
#: Width at which the injected edge is as sharp as a regular clock edge.
DEFAULT_FULL_STRENGTH_WIDTH_PS = 1500.0
#: Effective-period penalty per ps of missing width below full strength:
#: a weak (slow-slewing) glitch edge reaches the registers late, which
#: behaves like a slightly longer capture period.
DEFAULT_NARROW_PULSE_SLOWDOWN = 0.5


@dataclass(frozen=True)
class GlitchPulse:
    """One clock-glitch pulse injected into the attacked round.

    The glitch generator of the attack platform inserts a premature
    rising edge ``offset_ps`` after the attacked round's launching edge,
    with a pulse width of ``width_ps``.  The behavioural model maps the
    pulse to the *effective capture period* the ciphertext register
    sees:

    * a pulse narrower than ``min_pulse_width_ps`` is filtered by the
      clock network — the round runs at the nominal period, no faults;
    * a full-strength pulse captures at ``offset_ps``;
    * in between, the degraded edge slew adds
      ``narrow_pulse_slowdown * (full_strength_width_ps - width_ps)``
      picoseconds to the effective period, so widening the pulse
      monotonically strengthens the attack.

    This is the (offset x width) half of the attack campaigns' glitch
    grid; the third axis is the nominal clock period itself.
    """

    offset_ps: float
    width_ps: float
    min_pulse_width_ps: float = DEFAULT_MIN_PULSE_WIDTH_PS
    full_strength_width_ps: float = DEFAULT_FULL_STRENGTH_WIDTH_PS
    narrow_pulse_slowdown: float = DEFAULT_NARROW_PULSE_SLOWDOWN

    def __post_init__(self) -> None:
        if self.offset_ps <= 0:
            raise ValueError("offset_ps must be positive")
        if self.width_ps <= 0:
            raise ValueError("width_ps must be positive")
        if self.min_pulse_width_ps < 0 or self.full_strength_width_ps < 0:
            raise ValueError("pulse-width thresholds must be non-negative")
        if self.min_pulse_width_ps > self.full_strength_width_ps:
            raise ValueError(
                "min_pulse_width_ps cannot exceed full_strength_width_ps"
            )
        if self.narrow_pulse_slowdown < 0:
            raise ValueError("narrow_pulse_slowdown must be non-negative")

    def propagates(self) -> bool:
        """True if the pulse survives the clock network at all."""
        return self.width_ps >= self.min_pulse_width_ps

    def effective_period_ps(self, nominal_period_ps: float) -> float:
        """Capture period of the attacked round under this pulse."""
        if nominal_period_ps <= 0:
            raise ValueError("nominal_period_ps must be positive")
        if not self.propagates():
            return nominal_period_ps
        degraded = self.offset_ps + self.narrow_pulse_slowdown * max(
            0.0, self.full_strength_width_ps - self.width_ps
        )
        # A glitch edge beyond the nominal period never wins the race
        # against the regular edge.
        return min(nominal_period_ps, degraded)


@dataclass(frozen=True)
class ClockGlitchGenerator:
    """Swept clock-glitch period sequence.

    Parameters
    ----------
    start_period_ps:
        Glitched clock period at step 0 (before any decrement).  The
        platform operator chooses it slightly above the design's nominal
        critical path so that the sweep crosses the interesting region.
    step_ps:
        Period decrement per step (35 ps in the paper).
    num_steps:
        Number of decrements performed (51 in the paper).
    """

    start_period_ps: float
    step_ps: float = DEFAULT_GLITCH_STEP_PS
    num_steps: int = DEFAULT_GLITCH_STEPS

    def __post_init__(self) -> None:
        if self.start_period_ps <= 0:
            raise ValueError("start_period_ps must be positive")
        if self.step_ps <= 0:
            raise ValueError("step_ps must be positive")
        if self.num_steps <= 0:
            raise ValueError("num_steps must be positive")
        if self.step_ps * self.num_steps >= self.start_period_ps:
            raise ValueError(
                "glitch sweep would reach a non-positive clock period"
            )

    def period_at_step(self, step: int) -> float:
        """Glitched period after ``step`` decrements (step 0 = no decrement)."""
        if not 0 <= step <= self.num_steps:
            raise ValueError(
                f"step must be in 0..{self.num_steps}, got {step}"
            )
        return self.start_period_ps - step * self.step_ps

    def periods(self) -> List[float]:
        """All glitched periods, from step 0 to ``num_steps``."""
        return [self.period_at_step(step) for step in range(self.num_steps + 1)]

    def __iter__(self) -> Iterator[float]:
        return iter(self.periods())

    def steps_to_violate(self, required_period_ps: float) -> int:
        """First decrement step at which ``required_period_ps`` is violated.

        Returns the smallest step ``s`` such that
        ``period_at_step(s) < required_period_ps``, or ``num_steps + 1``
        if the sweep never violates the requirement (the bit is never
        faulted — reported as "beyond the sweep" by the delay meter).
        """
        if required_period_ps <= 0:
            raise ValueError("required_period_ps must be positive")
        for step in range(self.num_steps + 1):
            if self.period_at_step(step) < required_period_ps:
                return step
        return self.num_steps + 1

    @classmethod
    def calibrated(cls, worst_path_ps: float, budget: TimingBudget,
                   margin_steps: int = 5,
                   step_ps: float = DEFAULT_GLITCH_STEP_PS,
                   num_steps: int = DEFAULT_GLITCH_STEPS
                   ) -> "ClockGlitchGenerator":
        """Build a sweep whose start sits ``margin_steps`` above the worst path.

        This mirrors the manual calibration of the physical platform: the
        operator lowers the glitch period until the first faults appear,
        then sweeps the region below.
        """
        if margin_steps < 0:
            raise ValueError("margin_steps must be non-negative")
        start = budget.required_period_ps(worst_path_ps) + margin_steps * step_ps
        return cls(start_period_ps=start, step_ps=step_ps, num_steps=num_steps)
