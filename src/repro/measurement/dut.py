"""Device-under-test (DUT) abstraction.

A DUT is the combination the measurement bench actually probes: one
*design* (golden, or infected with a specific trojan) programmed into
one *physical die* (with its inter- and intra-die process variations).
The paper's experiments are all sweeps over DUTs:

* Sec. III: golden and two infected designs, one die, many (P, K) pairs;
* Sec. IV: golden and infected designs, one die, fixed plaintext;
* Sec. V: four designs x eight dies, fixed plaintext.

:class:`DeviceUnderTest` lazily builds the timing annotation for its
(design, die) combination so that the delay meter and the EM simulator
see a consistent physical model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..fpga.annotation import build_delay_annotation
from ..fpga.design import GoldenDesign
from ..fpga.power_grid import PowerGrid
from ..netlist.aes_round_circuit import AESLastRoundCircuit
from ..netlist.netlist import Netlist
from ..netlist.timing import DelayAnnotation
from ..trojan.base import HardwareTrojan
from ..trojan.insertion import InfectedDesign
from ..variation.inter_die import DieProfile
from ..variation.intra_die import IntraDieVariation

#: Either a golden or an infected design can be programmed into a die.
Design = Union[GoldenDesign, InfectedDesign]


@dataclass
class DeviceUnderTest:
    """One design programmed into one physical die.

    Parameters
    ----------
    design:
        :class:`GoldenDesign` or :class:`InfectedDesign`.
    die:
        The physical die profile (inter-die variation).  ``None`` means a
        nominal die with no process variation at all (useful in tests).
    label:
        Human-readable identifier used in reports ("Clean1", "HTcomb"...).
    enable_intra_die_variation:
        Whether to include the intra-die variation field of the die.
    """

    design: Design
    die: Optional[DieProfile] = None
    label: str = ""
    enable_intra_die_variation: bool = True
    power_grid: Optional[PowerGrid] = None
    _annotation: Optional[DelayAnnotation] = field(default=None, init=False,
                                                   repr=False)

    def __post_init__(self) -> None:
        if not self.label:
            self.label = self._default_label()
        if self.power_grid is None:
            self.power_grid = PowerGrid(self.golden.device)

    def _default_label(self) -> str:
        if self.is_infected:
            name = self.trojan.name if self.trojan else "HT"
            suffix = f"_die{self.die.die_id}" if self.die else ""
            return f"{name}{suffix}"
        suffix = f"_die{self.die.die_id}" if self.die else ""
        return f"golden{suffix}"

    # -- design structure ------------------------------------------------------

    @property
    def is_infected(self) -> bool:
        """True if the DUT hosts a trojan."""
        return isinstance(self.design, InfectedDesign)

    @property
    def golden(self) -> GoldenDesign:
        """The underlying golden design (shared by infected designs)."""
        if isinstance(self.design, InfectedDesign):
            return self.design.golden
        return self.design

    @property
    def trojan(self) -> Optional[HardwareTrojan]:
        """The inserted trojan, if any."""
        if isinstance(self.design, InfectedDesign):
            return self.design.trojan
        return None

    @property
    def infected(self) -> Optional[InfectedDesign]:
        """The infected design, if any."""
        return self.design if isinstance(self.design, InfectedDesign) else None

    @property
    def circuit(self) -> AESLastRoundCircuit:
        """The last-round circuit of the host design."""
        return self.golden.circuit

    @property
    def netlist(self) -> Netlist:
        """The host netlist (the trojan netlist is kept separate)."""
        return self.golden.netlist

    # -- physical model ---------------------------------------------------------

    def intra_die_variation(self) -> Optional[IntraDieVariation]:
        """The intra-die variation field of this DUT's die."""
        if self.die is None or not self.enable_intra_die_variation:
            return None
        device = self.golden.device
        return IntraDieVariation(
            seed=self.die.intra_die_seed,
            die_rows=device.rows,
            die_cols=device.columns,
        )

    def delay_annotation(self) -> DelayAnnotation:
        """Timing annotation of this (design, die) combination (cached)."""
        if self._annotation is None:
            extra_net_delays = None
            aggressors = None
            if isinstance(self.design, InfectedDesign):
                extra_net_delays = self.design.tap_extra_delay_ps
                aggressors = self.design.aggressor_positions()
            self._annotation = build_delay_annotation(
                self.golden,
                die=self.die,
                intra_die=self.intra_die_variation(),
                extra_net_delays_ps=extra_net_delays,
                aggressor_positions=aggressors,
                power_grid=self.power_grid,
            )
        return self._annotation

    def em_gain(self) -> float:
        """Die-dependent EM emission gain."""
        return self.die.em_gain if self.die is not None else 1.0

    def em_offset(self) -> float:
        """Die-dependent EM baseline offset."""
        return self.die.em_offset if self.die is not None else 0.0
