"""Digital storage oscilloscope model.

The paper acquires EM traces with an Agilent 54853A Infiniium DSO
configured at 5 GS/s, averaging each stored trace 1 000 times to push the
measurement noise down.  The oscilloscope model covers what matters to
the detection metric:

* the sampling grid (sample rate x clock frequency determines how many
  samples one AES encryption spans — about 3 000 in Fig. 4),
* vertical quantisation of the 8-bit ADC over a configurable full scale,
* on-board averaging of repeated acquisitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Paper value: the DSO runs at 5 GS/s.
DEFAULT_SAMPLE_RATE_GSPS = 5.0
#: Paper value: each stored trace is the average of 1 000 acquisitions.
DEFAULT_NUM_AVERAGES = 1000
#: Full scale of the vertical axis, in the arbitrary units used throughout
#: (the paper's traces span roughly +/- 2e4 units).
DEFAULT_FULL_SCALE = 65536.0
#: Vertical resolution of the ADC.
DEFAULT_ADC_BITS = 8


@dataclass(frozen=True)
class Oscilloscope:
    """Acquisition front-end: sampling, quantisation and averaging."""

    sample_rate_gsps: float = DEFAULT_SAMPLE_RATE_GSPS
    num_averages: int = DEFAULT_NUM_AVERAGES
    full_scale: float = DEFAULT_FULL_SCALE
    adc_bits: int = DEFAULT_ADC_BITS

    def __post_init__(self) -> None:
        if self.sample_rate_gsps <= 0:
            raise ValueError("sample_rate_gsps must be positive")
        if self.num_averages <= 0:
            raise ValueError("num_averages must be positive")
        if self.full_scale <= 0:
            raise ValueError("full_scale must be positive")
        if not 1 <= self.adc_bits <= 24:
            raise ValueError("adc_bits must be in 1..24")

    def samples_per_nanosecond(self) -> float:
        """Number of samples acquired per nanosecond."""
        return self.sample_rate_gsps

    def samples_for_duration_ns(self, duration_ns: float) -> int:
        """Number of samples spanning ``duration_ns``."""
        if duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        return int(round(duration_ns * self.sample_rate_gsps))

    @property
    def lsb(self) -> float:
        """Single-shot quantisation step of the ADC."""
        return self.full_scale / (2 ** self.adc_bits)

    def effective_lsb(self) -> float:
        """Resolution of the averaged trace.

        The single-shot amplitude noise is much larger than one ADC step,
        so averaging N dithered acquisitions recovers sub-LSB resolution
        (processing gain of sqrt(N)); the stored trace is effectively
        quantised at ``lsb / sqrt(N)``.
        """
        return self.lsb / np.sqrt(self.num_averages)

    def quantise(self, signal: np.ndarray,
                 lsb: Optional[float] = None) -> np.ndarray:
        """Quantise a signal to the ADC grid (clipping at full scale)."""
        signal = np.asarray(signal, dtype=float)
        half_scale = self.full_scale / 2.0
        step = self.lsb if lsb is None else float(lsb)
        if step <= 0:
            raise ValueError("quantisation step must be positive")
        clipped = np.clip(signal, -half_scale, half_scale - step)
        return np.round(clipped / step) * step

    def effective_noise_sigma(self, single_shot_sigma: float) -> float:
        """Residual noise after on-board averaging."""
        if single_shot_sigma < 0:
            raise ValueError("single_shot_sigma must be non-negative")
        return single_shot_sigma / np.sqrt(self.num_averages)

    def acquire(self, averaged_signal: np.ndarray,
                noise_sigma_single_shot: float,
                rng: np.random.Generator,
                quantise: bool = True) -> np.ndarray:
        """Produce the stored (averaged) trace for a noiseless input signal.

        ``averaged_signal`` is the deterministic part of the emission;
        the function adds the residual averaged noise and quantises.
        """
        signal = np.asarray(averaged_signal, dtype=float)
        sigma = self.effective_noise_sigma(noise_sigma_single_shot)
        if sigma > 0:
            signal = signal + rng.normal(0.0, sigma, size=signal.shape)
        if quantise:
            signal = self.quantise(signal, lsb=self.effective_lsb())
        return signal
