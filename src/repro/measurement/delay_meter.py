"""Per-bit path-delay measurement by iterative clock glitching.

This is the measurement procedure of Sec. III-B of the paper:

1. pick a (plaintext, key) pair, run the AES and glitch the clock of the
   10th round;
2. decrease the glitched period in 35 ps steps (51 steps) and record,
   for every ciphertext bit, the number of decrements after which the
   bit starts to be faulted;
3. repeat each measurement 10 times to average the noise term ``dM_r``;
4. repeat over many (plaintext, key) pairs — the sensitised paths depend
   on the data, so each pair samples a different set of bits.

The resulting matrix of "steps to fault" per (pair, repetition, bit) is
the raw material both the golden-model fingerprint and the comparison of
Fig. 3 are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..crypto.aes import AES
from ..crypto.batch import (
    as_block_matrix,
    expand_keys,
    round_states_with_keys,
)
from ..crypto.state import BLOCK_BITS
from ..netlist.timing import TimingEngine
from .clock import ClockGlitchGenerator, TimingBudget
from .dut import DeviceUnderTest
from .fault_injection import SetupViolationFaultModel
from .noise import DelayNoiseModel


@dataclass(frozen=True)
class PlaintextKeyPair:
    """One (plaintext, key) stimulus of the delay campaign."""

    index: int
    plaintext: bytes
    key: bytes

    def __post_init__(self) -> None:
        if len(self.plaintext) != 16:
            raise ValueError("plaintext must be 16 bytes")
        if len(self.key) not in (16, 24, 32):
            raise ValueError("key must be 16, 24 or 32 bytes")


def generate_pk_pairs(count: int, seed: int = 0,
                      fixed_key: Optional[bytes] = None) -> List[PlaintextKeyPair]:
    """Generate the random (plaintext, key) pairs of the campaign.

    The paper draws 10 000 random pairs and reports results for 50 of
    them; pass ``fixed_key`` to emulate a campaign where only the
    plaintext varies.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    pairs: List[PlaintextKeyPair] = []
    for index in range(count):
        plaintext = bytes(int(x) for x in rng.integers(0, 256, size=16))
        key = fixed_key if fixed_key is not None else bytes(
            int(x) for x in rng.integers(0, 256, size=16)
        )
        pairs.append(PlaintextKeyPair(index=index, plaintext=plaintext, key=key))
    return pairs


@dataclass
class DelayMeasurementConfig:
    """Configuration of one delay-measurement campaign."""

    repetitions: int = 10
    glitch_step_ps: float = 35.0
    num_glitch_steps: int = 51
    calibration_margin_steps: int = 5
    attacked_round: int = 10
    noise: DelayNoiseModel = field(default_factory=DelayNoiseModel)
    budget: TimingBudget = field(default_factory=TimingBudget)
    fault_model: SetupViolationFaultModel = field(
        default_factory=SetupViolationFaultModel
    )
    seed: int = 0

    def __post_init__(self) -> None:
        if self.repetitions <= 0:
            raise ValueError("repetitions must be positive")
        if self.num_glitch_steps <= 0:
            raise ValueError("num_glitch_steps must be positive")
        if self.glitch_step_ps <= 0:
            raise ValueError("glitch_step_ps must be positive")
        # Keep the fault model and the sweep consistent with the shared budget.
        self.fault_model = SetupViolationFaultModel(
            budget=self.budget,
            metastability_window_ps=self.fault_model.metastability_window_ps,
            stale_capture_probability=self.fault_model.stale_capture_probability,
        )


@dataclass
class PairMeasurement:
    """Delay measurement for one (plaintext, key) pair on one DUT.

    ``steps_to_fault`` has shape ``(repetitions, 128)``; the value
    ``num_glitch_steps + 1`` flags bits never faulted within the sweep
    (either their path is short or they did not toggle for this pair).
    ``arrival_ps`` holds the noiseless per-bit arrival times (NaN for
    bits that do not toggle); it is kept for diagnostics and tests.
    ``glitch`` is the sweep used for this pair (the platform re-centres
    the sweep per stimulus so every pair's paths fall inside the window;
    step counts are only ever compared between devices for the same pair
    and the same sweep).
    """

    pair: PlaintextKeyPair
    steps_to_fault: np.ndarray
    arrival_ps: np.ndarray
    glitch: Optional[ClockGlitchGenerator] = None

    def mean_steps(self) -> np.ndarray:
        """Mean steps-to-fault over repetitions, per bit (shape (128,))."""
        return self.steps_to_fault.mean(axis=0)

    def observable_bits(self) -> np.ndarray:
        """Paper-bit indices that toggled (and can therefore be measured)."""
        return np.flatnonzero(~np.isnan(self.arrival_ps))


@dataclass
class DelayMeasurement:
    """Full delay campaign result for one DUT."""

    label: str
    glitch: ClockGlitchGenerator
    config: DelayMeasurementConfig
    pairs: List[PairMeasurement] = field(default_factory=list)

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    def steps_matrix(self) -> np.ndarray:
        """Steps-to-fault, shape ``(num_pairs, repetitions, 128)``."""
        return np.stack([p.steps_to_fault for p in self.pairs], axis=0)

    def mean_steps(self) -> np.ndarray:
        """Mean steps-to-fault over repetitions, shape ``(num_pairs, 128)``."""
        return np.stack([p.mean_steps() for p in self.pairs], axis=0)

    def mean_delay_ps(self) -> np.ndarray:
        """Mean steps converted to picoseconds (steps x glitch step)."""
        return self.mean_steps() * self.config.glitch_step_ps

    def repetition_std_ps(self) -> np.ndarray:
        """Per-(pair, bit) standard deviation across repetitions, in ps."""
        return self.steps_matrix().std(axis=1, ddof=0) * self.config.glitch_step_ps


class PathDelayMeter:
    """The clock-glitch delay measurement instrument."""

    def __init__(self, config: Optional[DelayMeasurementConfig] = None):
        self.config = config or DelayMeasurementConfig()

    # -- timing helpers ---------------------------------------------------------

    def _timing_engine(self, dut: DeviceUnderTest) -> TimingEngine:
        return TimingEngine(
            dut.netlist,
            annotation=dut.delay_annotation(),
            input_arrival_ps=0.0,
        )

    def pair_transitions(self, dut: DeviceUnderTest, pair: PlaintextKeyPair
                         ) -> "Tuple[Dict[str, int], Dict[str, int]]":
        """Attacked-round (before, after) input vectors for one (P, K) pair.

        The stimulus only depends on the pair and the host circuit — not
        on the die or the inserted trojan — so batch campaigns compute it
        once and share it across every device under test.
        """
        aes = AES(pair.key)
        trace = aes.encrypt_trace(pair.plaintext)
        attacked = self.config.attacked_round
        if not 2 <= attacked <= trace.num_rounds:
            raise ValueError(
                f"attacked_round must be in 2..{trace.num_rounds}, got {attacked}"
            )
        circuit = dut.circuit
        before = circuit.input_values(trace.round(attacked - 1).state_in,
                                      aes.round_keys[attacked - 1])
        after = circuit.input_values(trace.round(attacked).state_in,
                                     aes.round_keys[attacked])
        return before, after

    def pair_transitions_batch(self, dut: DeviceUnderTest,
                               pairs: Sequence[PlaintextKeyPair]
                               ) -> "List[Tuple[Dict[str, int], Dict[str, int]]]":
        """Attacked-round input vectors of *all* pairs in one cipher pass.

        The register states of every (P, K) stimulus come from the
        batched AES kernel (:mod:`repro.crypto.batch`, one array pass
        per round with per-pair round keys) instead of one scalar
        ``encrypt_trace`` per pair; each entry is bit-identical to
        :meth:`pair_transitions`, which remains the serial reference.
        """
        if not pairs:
            return []
        attacked = self.config.attacked_round
        round_keys = expand_keys([pair.key for pair in pairs])
        states = round_states_with_keys(
            as_block_matrix([pair.plaintext for pair in pairs]), round_keys
        )
        num_rounds = states.shape[1] - 2
        if not 2 <= attacked <= num_rounds:
            raise ValueError(
                f"attacked_round must be in 2..{num_rounds}, got {attacked}"
            )
        circuit = dut.circuit
        # Row r of the state tensor is the register content *entering*
        # round r (row 0 = plaintext, row 1 = state after AddRoundKey 0).
        return [
            (
                circuit.input_values(bytes(states[row, attacked - 1]),
                                     bytes(round_keys[row, attacked - 1])),
                circuit.input_values(bytes(states[row, attacked]),
                                     bytes(round_keys[row, attacked])),
            )
            for row in range(len(pairs))
        ]

    def arrival_times_ps(self, dut: DeviceUnderTest,
                         pair: PlaintextKeyPair,
                         engine: Optional[TimingEngine] = None,
                         transitions: Optional[tuple] = None) -> np.ndarray:
        """Noiseless per-bit arrival times for one (P, K) pair.

        The attacked round's input transition is derived from the AES
        round trace: the state register switches from the round-9 input
        to the round-10 input, and the round-key input from key 9 to
        key 10.  Bits whose flip-flop D input does not toggle get NaN.
        ``engine`` and ``transitions`` let batch campaigns reuse the
        per-DUT timing engine and the per-pair stimulus.
        """
        circuit = dut.circuit
        before, after = (transitions if transitions is not None
                         else self.pair_transitions(dut, pair))
        if engine is None:
            engine = self._timing_engine(dut)
        result = engine.two_vector_arrival_times(before, after)
        endpoint_delays = engine.endpoint_delays(result, circuit.output_d_nets())

        arrivals = np.full(BLOCK_BITS, np.nan)
        for bit_index, net in enumerate(circuit.output_d_nets()):
            delay = endpoint_delays[net]
            if delay is not None:
                arrivals[bit_index] = delay
        return arrivals

    # -- calibration ----------------------------------------------------------------

    def calibrate_glitch(self, dut: DeviceUnderTest,
                         pairs: Sequence[PlaintextKeyPair]
                         ) -> ClockGlitchGenerator:
        """Choose one glitch sweep covering the DUT's worst observed path.

        The physical platform is calibrated on the golden model; the same
        sweep is then reused for every device under test so that step
        counts are directly comparable.
        """
        if not pairs:
            raise ValueError("at least one pair is required for calibration")
        worst = 0.0
        for pair in pairs:
            arrivals = self.arrival_times_ps(dut, pair)
            finite = arrivals[~np.isnan(arrivals)]
            if finite.size:
                worst = max(worst, float(finite.max()))
        if worst <= 0.0:
            raise ValueError("no observable path found during calibration")
        return self._calibrated_glitch(worst)

    def _calibrated_glitch(self, worst_path_ps: float) -> ClockGlitchGenerator:
        """The sweep this meter's configuration centres on a worst path."""
        return ClockGlitchGenerator.calibrated(
            worst_path_ps=worst_path_ps,
            budget=self.config.budget,
            margin_steps=self.config.calibration_margin_steps,
            step_ps=self.config.glitch_step_ps,
            num_steps=self.config.num_glitch_steps,
        )

    def calibrate_glitches(self, dut: DeviceUnderTest,
                           pairs: Sequence[PlaintextKeyPair]
                           ) -> Dict[int, ClockGlitchGenerator]:
        """Per-pair glitch sweeps (keyed by ``pair.index``).

        The sensitised paths depend strongly on the processed data, so a
        single 51-step window cannot always cover every pair's region of
        interest.  The operator therefore re-centres the sweep for each
        (P, K) stimulus on the golden model; the same per-pair sweeps are
        reused for every device under test, which keeps the per-pair step
        counts comparable between devices (the only comparison Eq. (4)
        performs).
        """
        if not pairs:
            raise ValueError("at least one pair is required for calibration")
        return {pair.index: self.calibrate_glitch(dut, [pair]) for pair in pairs}

    # -- measurement -----------------------------------------------------------------

    def measure_pair(self, dut: DeviceUnderTest, pair: PlaintextKeyPair,
                     glitch: ClockGlitchGenerator,
                     rng: np.random.Generator) -> PairMeasurement:
        """Measure the steps-to-fault of every bit for one (P, K) pair.

        The implementation vectorises the sweep: the per-bit capture
        behaviour is the one of
        :class:`~repro.measurement.fault_injection.SetupViolationFaultModel`
        (violation probability ramping over the metastability window,
        stale or random resolution), evaluated for every (repetition,
        bit, step) at once.
        """
        arrivals = self.arrival_times_ps(dut, pair)
        return self._pair_measurement(pair, arrivals, glitch, rng)

    def _pair_measurement(self, pair: PlaintextKeyPair, arrivals: np.ndarray,
                          glitch: ClockGlitchGenerator,
                          rng: np.random.Generator) -> PairMeasurement:
        """Sample the steps-to-fault matrix from precomputed arrival times."""
        config = self.config
        fault_model = config.fault_model
        periods = np.asarray(glitch.periods())  # (S+1,)
        repetitions = config.repetitions

        noise = config.noise.sample(rng, size=(repetitions, BLOCK_BITS))
        noisy_arrivals = arrivals[None, :] + noise  # (R, 128)
        # One shared violation law (step at slack <= 0, ramp over the
        # metastability window, NaN = stable bit) for the whole
        # (repetition, bit, step) grid.
        probability = fault_model.violation_probabilities(
            noisy_arrivals[:, :, None], periods[None, None, :]
        )  # (R, 128, S+1)
        violated = rng.random(probability.shape) < probability
        # A violated capture is observable unless metastability happens to
        # resolve to the correct value: stale capture (always wrong for a
        # toggling bit) or a random value that is wrong half the time.
        observable_probability = (fault_model.stale_capture_probability
                                  + 0.5 * (1.0 - fault_model.stale_capture_probability))
        observed = violated & (rng.random(violated.shape) < observable_probability)

        never = glitch.num_steps + 1
        any_fault = observed.any(axis=2)
        first_fault = np.where(any_fault, observed.argmax(axis=2), never)
        steps_to_fault = first_fault.astype(float)

        return PairMeasurement(pair=pair, steps_to_fault=steps_to_fault,
                               arrival_ps=arrivals, glitch=glitch)

    def measure(self, dut: DeviceUnderTest, pairs: Sequence[PlaintextKeyPair],
                glitch=None, seed: Optional[int] = None) -> DelayMeasurement:
        """Run the full campaign (all pairs, all repetitions) on one DUT.

        ``glitch`` may be a single :class:`ClockGlitchGenerator`, a mapping
        from ``pair.index`` to per-pair generators (see
        :meth:`calibrate_glitches`), or None to calibrate per pair on this
        DUT.
        """
        if not pairs:
            raise ValueError("the campaign needs at least one (P, K) pair")
        if glitch is None:
            glitch = self.calibrate_glitches(dut, pairs)
        rng = np.random.default_rng(self.config.seed if seed is None else seed)
        first_glitch = (glitch if isinstance(glitch, ClockGlitchGenerator)
                        else glitch[pairs[0].index])
        measurement = DelayMeasurement(label=dut.label, glitch=first_glitch,
                                       config=self.config)
        for pair in pairs:
            pair_glitch = (glitch if isinstance(glitch, ClockGlitchGenerator)
                           else glitch[pair.index])
            measurement.pairs.append(self.measure_pair(dut, pair, pair_glitch, rng))
        return measurement

    def batch_arrival_times(self, duts: Sequence[DeviceUnderTest],
                            pairs: Sequence[PlaintextKeyPair]) -> np.ndarray:
        """Noiseless arrival times for every (DUT, pair) in array passes.

        The host circuit is lowered once
        (:meth:`~repro.netlist.netlist.Netlist.compiled`) and a
        :class:`~repro.netlist.compiled.CompiledTimingEngine` sweeps all
        pairs and all dies of each circuit group together — per-die
        delay vectors broadcast over the pair axis, so the whole
        (pairs x dies) grid costs one levelised sweep.  Every entry is
        bit-identical to :meth:`arrival_times_ps` for that (DUT, pair).

        Returns shape ``(num_duts, num_pairs, 128)`` (NaN = stable bit).
        """
        from ..netlist.compiled import CompiledTimingEngine

        arrivals = np.full((len(duts), len(pairs), BLOCK_BITS), np.nan)
        groups: Dict[int, List[int]] = {}
        for dut_index, dut in enumerate(duts):
            groups.setdefault(id(dut.circuit), []).append(dut_index)
        for dut_indices in groups.values():
            circuit = duts[dut_indices[0]].circuit
            netlist = circuit.netlist
            input_nets = list(netlist.inputs)
            before_rows = np.empty((len(pairs), len(input_nets)),
                                   dtype=np.uint8)
            after_rows = np.empty_like(before_rows)
            # All pairs' attacked-round stimuli from one batched-cipher
            # pass rather than one scalar encrypt_trace per pair.
            transitions = self.pair_transitions_batch(duts[dut_indices[0]],
                                                      pairs)
            for row, (before, after) in enumerate(transitions):
                before_rows[row] = [before[net] for net in input_nets]
                after_rows[row] = [after[net] for net in input_nets]
            engine = CompiledTimingEngine(
                netlist.compiled(),
                [duts[dut_index].delay_annotation()
                 for dut_index in dut_indices],
                input_arrival_ps=0.0,
            )
            # Chunk the pair axis so the (pairs x dies x nets) float64
            # arrival array stays bounded (~256 MB) however many
            # stimuli the campaign sweeps; chunking does not change any
            # value — pairs are independent.
            max_elements = 32_000_000
            per_pair = len(dut_indices) * (netlist.compiled().num_nets + 1)
            chunk = max(1, max_elements // per_pair)
            for begin in range(0, len(pairs), chunk):
                stop = begin + chunk
                _, _, net_arrivals = engine.two_vector_arrivals(
                    before_rows[begin:stop], after_rows[begin:stop],
                    input_nets,
                )
                endpoint = engine.endpoint_arrivals(net_arrivals,
                                                    circuit.output_d_nets())
                arrivals[dut_indices, begin:stop] = endpoint.transpose(1, 0, 2)
        return arrivals

    def measure_batch(self, duts: Sequence[DeviceUnderTest],
                      pairs: Sequence[PlaintextKeyPair],
                      glitch=None,
                      seeds: Optional[Sequence[int]] = None
                      ) -> List[DelayMeasurement]:
        """Run the campaign on many DUTs through the compiled kernel.

        The attacked-round input vectors of every (P, K) pair depend
        only on the host circuit, so they are computed once and shared;
        the per-bit arrival times of the whole (DUT x pair) grid come
        from one :meth:`batch_arrival_times` sweep instead of a per-cell
        Python walk per (DUT, pair).  ``seeds[i]`` seeds DUT ``i``'s
        noise stream; the result is bit-identical to calling the
        interpreted :meth:`measure` per DUT with the same seed (that
        serial walk remains the reference this path is tested against).
        """
        if not pairs:
            raise ValueError("the campaign needs at least one (P, K) pair")
        if seeds is not None and len(seeds) != len(duts):
            raise ValueError(f"got {len(seeds)} seeds for {len(duts)} DUTs")
        arrival_grid = self.batch_arrival_times(duts, pairs)

        measurements: List[DelayMeasurement] = []
        for dut_index, dut in enumerate(duts):
            arrivals = {
                pair.index: arrival_grid[dut_index, pair_pos]
                for pair_pos, pair in enumerate(pairs)
            }
            dut_glitch = glitch
            if dut_glitch is None:
                # Same per-pair calibration as calibrate_glitches, with
                # the already-computed arrivals reused.
                dut_glitch = {
                    pair.index: self._calibrated_glitch(
                        self._worst_arrival(arrivals[pair.index])
                    )
                    for pair in pairs
                }
            seed = self.config.seed if seeds is None else seeds[dut_index]
            rng = np.random.default_rng(seed)
            first_glitch = (dut_glitch
                            if isinstance(dut_glitch, ClockGlitchGenerator)
                            else dut_glitch[pairs[0].index])
            measurement = DelayMeasurement(label=dut.label, glitch=first_glitch,
                                           config=self.config)
            for pair in pairs:
                pair_glitch = (dut_glitch
                               if isinstance(dut_glitch, ClockGlitchGenerator)
                               else dut_glitch[pair.index])
                measurement.pairs.append(
                    self._pair_measurement(pair, arrivals[pair.index],
                                           pair_glitch, rng)
                )
            measurements.append(measurement)
        return measurements

    @staticmethod
    def _worst_arrival(arrivals: np.ndarray) -> float:
        """Worst observable path of one pair's arrival times."""
        finite = arrivals[~np.isnan(arrivals)]
        if not finite.size or float(finite.max()) <= 0.0:
            raise ValueError("no observable path found during calibration")
        return float(finite.max())

    # -- staircase (Fig. 2) --------------------------------------------------------------

    def fault_staircase(self, dut: DeviceUnderTest, pair: PlaintextKeyPair,
                        glitch: ClockGlitchGenerator,
                        seed: int = 0) -> Dict[int, int]:
        """Number of faulted bits at every glitch step (the Fig. 2 staircase).

        Uses the explicit faulted-ciphertext path of the fault-injection
        model: for every step the glitched round is "run" once and the
        faulted ciphertext compared against the correct one.  The
        attacked-round register states (stimulus, stale and correct
        capture values) come from the batched AES kernel rather than a
        scalar ``encrypt_trace``.
        """
        rng = np.random.default_rng(seed)
        attacked = self.config.attacked_round
        round_keys = expand_keys(pair.key)
        states = round_states_with_keys(
            as_block_matrix([pair.plaintext]), round_keys
        )
        num_rounds = states.shape[1] - 2
        if not 2 <= attacked <= num_rounds:
            raise ValueError(
                f"attacked_round must be in 2..{num_rounds}, got {attacked}"
            )
        circuit = dut.circuit
        engine = self._timing_engine(dut)
        before = circuit.input_values(bytes(states[0, attacked - 1]),
                                      bytes(round_keys[0, attacked - 1]))
        after = circuit.input_values(bytes(states[0, attacked]),
                                     bytes(round_keys[0, attacked]))
        result = engine.two_vector_arrival_times(before, after)
        endpoint = engine.endpoint_delays(result, circuit.output_d_nets())
        arrivals = [endpoint[net] for net in circuit.output_d_nets()]

        correct = bytes(states[0, attacked + 1])
        stale = bytes(states[0, attacked])
        staircase: Dict[int, int] = {}
        for step, period in enumerate(glitch.periods()):
            faulted = self.config.fault_model.faulted_ciphertext(
                correct, stale, arrivals, period, rng
            )
            mask = self.config.fault_model.faulted_bit_mask(correct, faulted)
            staircase[step] = int(mask.sum())
        return staircase
