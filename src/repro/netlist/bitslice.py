"""Bitsliced netlist kernel: 64 stimulus vectors per uint64 word.

The uint8 kernel in :mod:`repro.netlist.compiled` spends one byte lane
per stimulus vector.  This module lowers the same
:class:`~repro.netlist.compiled.CompiledNetlist` once more, into a
*bitplane* form: the value matrix becomes ``(ceil(num_vectors / 64),
num_nets + 1)`` uint64 where bit ``v % 64`` of word row ``v // 64``
carries stimulus vector ``v`` — Biham-style bitslicing.  Each
topological level then evaluates its cells as boolean-algebra word
operations derived from the truth-table LUT normal form:

* constant and single-literal tables become broadcasts / XOR masks;
* tables with exactly one ``1`` (``0``) entry — the reduction-tree AND
  (OR) stages of the trojan triggers — become ``k``-literal AND (OR)
  chains with per-literal inversion masks;
* parity tables become XOR chains, the MUX2 primitive becomes the
  3-op word mux ``a ^ (sel & (a ^ b))``;
* arbitrary LUTs (the Shannon-mapped S-box LUT6s) fall back to a
  mux-ladder Shannon expansion over the table constants.

Cells of one level sharing an operator class and arity are evaluated
together as ``(blocks, cells)`` word matrices, so the Python-level work
per level is a handful of vectorised calls — and each call touches 64x
fewer elements than the uint8 sweep.

The kernel is **bit-identical** to the uint8 sweep after unpacking (the
uint8 path stays the pinned reference); it is reached through the
:mod:`repro.backend` seam (``kernel_backend="bitslice"`` /
``--backend bitslice``) or directly via
:meth:`CompiledNetlist.bitsliced`.  All array operations route through
the backend's ``xp`` namespace so an accelerator namespace (CuPy) drops
in without touching this file's callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from .netlist import NetlistError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .compiled import CompiledNetlist

_WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: The MUX2 primitive's LUT with input order (select, in0, in1).
_MUX2_TABLE = (0, 0, 1, 0, 0, 1, 1, 1)


def _masks(bits: Any) -> np.ndarray:
    """0/1 array -> uint64 masks (0 -> 0, 1 -> all ones)."""
    return np.where(np.asarray(bits, dtype=bool), _ALL_ONES, np.uint64(0))


def classify_table(table: Tuple[int, ...]) -> Tuple[str, Any]:
    """Operator class of one truth table (input 0 = address bit 0).

    Returns ``(kind, aux)``:

    ``("const", value)``
        The table ignores its inputs.
    ``("copy", (pin, invert))``
        The table is a single literal of input ``pin``.
    ``("and", invert_bits)`` / ``("or", invert_bits)``
        AND/OR of all ``k`` literals, ``invert_bits[i]`` inverting
        input ``i``.
    ``("xor", invert)``
        Parity of all inputs, optionally inverted.
    ``("mux", None)``
        The MUX2 primitive table ``(select, in0, in1)``.
    ``("lut", None)``
        Anything else — evaluated by Shannon mux-ladder.
    """
    size = len(table)
    k = size.bit_length() - 1
    ones = sum(table)
    if ones == 0:
        return "const", 0
    if ones == size:
        return "const", 1
    for pin in range(k):
        bit = [(index >> pin) & 1 for index in range(size)]
        if list(table) == bit:
            return "copy", (pin, 0)
        if list(table) == [1 - value for value in bit]:
            return "copy", (pin, 1)
    if ones == 1:
        minterm = list(table).index(1)
        return "and", [1 - ((minterm >> pin) & 1) for pin in range(k)]
    if ones == size - 1:
        maxterm = list(table).index(0)
        return "or", [(maxterm >> pin) & 1 for pin in range(k)]
    parity = [bin(index).count("1") & 1 for index in range(size)]
    if list(table) == parity:
        return "xor", 0
    if list(table) == [1 - value for value in parity]:
        return "xor", 1
    if tuple(table) == _MUX2_TABLE:
        return "mux", None
    return "lut", None


@dataclass(frozen=True)
class _OpGroup:
    """All cells of one level sharing an operator class and arity."""

    kind: str
    #: (G,) output columns of the grouped cells.
    out_cols: np.ndarray
    #: (G, k) input columns (k = 0 for const, 1 for copy).
    in_cols: np.ndarray
    #: uint64 masks; meaning depends on ``kind``: per-literal inversion
    #: for and/or (G, k), final inversion for xor/copy (G,), the
    #: constant value for const (G,).
    invert: Optional[np.ndarray] = None
    #: (G, 2**k) word masks of the raw table entries (lut only).
    table_masks: Optional[np.ndarray] = None


# -- packing -------------------------------------------------------------------


def pack_bits(bits: np.ndarray, xp: Any = np) -> np.ndarray:
    """Pack a ``(num_vectors, cols)`` 0/1 matrix into uint64 bitplanes.

    Vector ``v`` lands in bit ``v % 64`` of word row ``v // 64``; the
    final partial word (``num_vectors`` not a multiple of 64) is
    zero-padded.
    """
    num_vectors, cols = bits.shape
    blocks = (num_vectors + _WORD_BITS - 1) // _WORD_BITS
    if num_vectors == 0:
        return xp.zeros((0, cols), dtype=xp.uint64)
    padded = bits
    if num_vectors != blocks * _WORD_BITS:
        padded = xp.zeros((blocks * _WORD_BITS, cols), dtype=xp.uint8)
        padded[:num_vectors] = bits
    packed_bytes = xp.packbits(padded, axis=0, bitorder="little")
    stacked = packed_bytes.reshape(blocks, 8, cols).astype(xp.uint64)
    words = xp.zeros((blocks, cols), dtype=xp.uint64)
    for byte in range(8):
        words |= stacked[:, byte, :] << xp.uint64(8 * byte)
    return words


def unpack_words(words: np.ndarray, num_vectors: int,
                 xp: Any = np) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(blocks, cols)`` -> 0/1 uint8."""
    blocks, cols = words.shape
    if num_vectors == 0 or blocks == 0:
        return xp.zeros((num_vectors, cols), dtype=xp.uint8)
    stacked = xp.zeros((blocks, 8, cols), dtype=xp.uint8)
    for byte in range(8):
        stacked[:, byte, :] = (words >> xp.uint64(8 * byte)).astype(xp.uint8)
    bits = xp.unpackbits(stacked.reshape(blocks * 8, cols), axis=0,
                         bitorder="little")
    return bits[:num_vectors]


# -- lowering ------------------------------------------------------------------


@dataclass
class BitslicedNetlist:
    """A :class:`CompiledNetlist` lowered to bitplane word operations."""

    compiled: "CompiledNetlist"
    #: Per topological level, the operator groups to evaluate in order.
    levels: List[List[_OpGroup]]

    @classmethod
    def from_compiled(cls, compiled: "CompiledNetlist") -> "BitslicedNetlist":
        levels: List[List[_OpGroup]] = []
        for start, end in compiled.level_slices:
            grouped: Dict[Tuple[str, int], List[Tuple[int, Any]]] = {}
            for position in range(start, end):
                arity = int(compiled.arity[position])
                offset = int(compiled.table_offset[position])
                table = tuple(
                    int(bit) for bit in compiled.tables[offset:offset + (1 << arity)]
                )
                kind, aux = classify_table(table)
                key_arity = {"const": 0, "copy": 1, "mux": 3}.get(kind, arity)
                grouped.setdefault((kind, key_arity), []).append(
                    (position, (aux, table))
                )
            level_ops: List[_OpGroup] = []
            for (kind, key_arity), members in sorted(grouped.items()):
                level_ops.append(
                    cls._build_group(compiled, kind, key_arity, members)
                )
            levels.append(level_ops)
        return cls(compiled=compiled, levels=levels)

    @staticmethod
    def _build_group(compiled: "CompiledNetlist", kind: str, arity: int,
                     members: List[Tuple[int, Any]]) -> _OpGroup:
        positions = np.array([position for position, _ in members],
                             dtype=np.int64)
        out_cols = compiled.output_idx[positions].astype(np.int64)
        if kind == "const":
            values = np.array([aux for _, (aux, _) in members])
            return _OpGroup(kind=kind, out_cols=out_cols,
                            in_cols=np.zeros((len(members), 0), np.int64),
                            invert=_masks(values))
        if kind == "copy":
            pins = np.array([aux[0] for _, (aux, _) in members])
            in_cols = compiled.input_idx[positions, pins].astype(np.int64)
            inverts = np.array([aux[1] for _, (aux, _) in members])
            return _OpGroup(kind=kind, out_cols=out_cols,
                            in_cols=in_cols[:, None], invert=_masks(inverts))
        in_cols = compiled.input_idx[positions, :arity].astype(np.int64)
        if kind in ("and", "or"):
            inverts = np.array([aux for _, (aux, _) in members])
            return _OpGroup(kind=kind, out_cols=out_cols, in_cols=in_cols,
                            invert=_masks(inverts))
        if kind == "xor":
            inverts = np.array([aux for _, (aux, _) in members])
            return _OpGroup(kind=kind, out_cols=out_cols, in_cols=in_cols,
                            invert=_masks(inverts))
        if kind == "mux":
            return _OpGroup(kind=kind, out_cols=out_cols, in_cols=in_cols)
        tables = np.array([table for _, (_, table) in members])
        return _OpGroup(kind=kind, out_cols=out_cols, in_cols=in_cols,
                        table_masks=_masks(tables))

    # -- evaluation ------------------------------------------------------------

    @property
    def num_nets(self) -> int:
        return self.compiled.num_nets

    def sweep_packed(self, words: np.ndarray, xp: Any = np) -> None:
        """Levelised in-place evaluation over a packed value matrix.

        ``words`` is ``(blocks, num_nets + 1)`` uint64, input/constant/
        register planes already written (the packed analogue of the
        prepared state the uint8 ``_sweep`` consumes).
        """
        if words.shape[1] != self.num_nets + 1:
            raise NetlistError(
                f"packed state must have {self.num_nets + 1} columns, "
                f"got {words.shape[1]}"
            )
        for level in self.levels:
            for op in level:
                words[:, op.out_cols] = self._eval_group(op, words, xp)

    def _eval_group(self, op: _OpGroup, words: np.ndarray,
                    xp: Any) -> np.ndarray:
        blocks = words.shape[0]
        kind = op.kind
        if kind == "const":
            return xp.broadcast_to(op.invert, (blocks, op.invert.size))
        if kind == "copy":
            return words[:, op.in_cols[:, 0]] ^ op.invert[None, :]
        if kind == "and":
            acc = words[:, op.in_cols[:, 0]] ^ op.invert[None, :, 0]
            for pin in range(1, op.in_cols.shape[1]):
                acc &= words[:, op.in_cols[:, pin]] ^ op.invert[None, :, pin]
            return acc
        if kind == "or":
            acc = words[:, op.in_cols[:, 0]] ^ op.invert[None, :, 0]
            for pin in range(1, op.in_cols.shape[1]):
                acc |= words[:, op.in_cols[:, pin]] ^ op.invert[None, :, pin]
            return acc
        if kind == "xor":
            acc = words[:, op.in_cols[:, 0]]
            for pin in range(1, op.in_cols.shape[1]):
                acc ^= words[:, op.in_cols[:, pin]]
            acc ^= op.invert[None, :]
            return acc
        if kind == "mux":
            select = words[:, op.in_cols[:, 0]]
            in0 = words[:, op.in_cols[:, 1]]
            in1 = words[:, op.in_cols[:, 2]]
            return in0 ^ (select & (in0 ^ in1))
        # Shannon mux-ladder over the table constants: the first ladder
        # level folds the (constant) cofactor pairs with input 0, each
        # further level muxes sibling cofactors with the next input.
        assert op.table_masks is not None
        arity = op.in_cols.shape[1]
        first = words[:, op.in_cols[:, 0]]
        not_first = ~first
        cofactors = [
            (not_first & op.table_masks[:, 2 * pair])
            | (first & op.table_masks[:, 2 * pair + 1])
            for pair in range(1 << (arity - 1))
        ]
        for pin in range(1, arity):
            select = words[:, op.in_cols[:, pin]]
            cofactors = [
                cofactors[2 * pair]
                ^ (select & (cofactors[2 * pair] ^ cofactors[2 * pair + 1]))
                for pair in range(len(cofactors) // 2)
            ]
        return cofactors[0]

    def evaluate_state(self, state: np.ndarray, xp: Any = np) -> np.ndarray:
        """Bitsliced replacement of the uint8 sweep.

        ``state`` is the prepared ``(num_vectors, num_nets + 1)`` uint8
        matrix (inputs, constants and register values written); returns
        the ``(num_vectors, num_nets)`` uint8 value matrix,
        bit-identical to ``CompiledNetlist._sweep`` + slice.
        """
        num_vectors = state.shape[0]
        words = pack_bits(state, xp=xp)
        self.sweep_packed(words, xp=xp)
        return unpack_words(words, num_vectors, xp=xp)[:, : self.num_nets]


__all__ = [
    "BitslicedNetlist",
    "classify_table",
    "pack_bits",
    "unpack_words",
]
