"""Structural netlist of the final AES round (the attacked round).

The paper's clock-glitch platform shortens the 10th round of an
iterative AES-128 implementation until ciphertext bits are faulted.  The
timing behaviour that matters is therefore the combinational path from
the state register (holding the round-10 input) through SubBytes,
ShiftRows and AddRoundKey into the ciphertext register.

:class:`AESLastRoundCircuit` builds that path as a flat LUT-mapped
netlist:

* 128 primary inputs ``st_b{byte}_{bit}`` — the Q outputs of the state
  register entering the final round,
* 128 primary inputs ``key_b{byte}_{bit}`` — the round-10 key (kept as
  inputs so the same netlist serves any key),
* 16 S-box instances (4 LUT6 + 3 MUX per output bit),
* ShiftRows as pure renaming (routing only, as on the FPGA),
* 128 XOR LUTs for AddRoundKey,
* 128 DFFs latching the ciphertext bits ``ct_b{byte}_{bit}``.

Bit indexing convention: ``(byte, bit)`` with ``bit`` 0 = LSB of the
byte; the "paper bit number" used on Fig. 3's X-axis is mapped through
:func:`paper_bit_to_byte_bit` (bit 0 = MSB of byte 0, matching
:func:`repro.crypto.state.differing_bits`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..crypto.aes import SHIFT_ROWS_PERM
from ..crypto.sbox import SBOX
from ..crypto.state import BLOCK_BITS, BLOCK_BYTES, validate_block
from .cells import make_dff, make_lut
from .netlist import Netlist
from .synth import synthesize_function

#: XOR2 truth table for LUT realisation (input0 is address bit 0).
_XOR2_TABLE = (0, 1, 1, 0)


def paper_bit_to_byte_bit(bit_index: int) -> Tuple[int, int]:
    """Map a paper-style bit index (0..127, MSB-first) to ``(byte, lsb_bit)``."""
    if not 0 <= bit_index < BLOCK_BITS:
        raise ValueError(f"bit_index must be in range(128), got {bit_index}")
    return bit_index // 8, 7 - (bit_index % 8)


def byte_bit_to_paper_bit(byte: int, bit: int) -> int:
    """Inverse of :func:`paper_bit_to_byte_bit`."""
    if not 0 <= byte < BLOCK_BYTES:
        raise ValueError(f"byte must be in range(16), got {byte}")
    if not 0 <= bit < 8:
        raise ValueError(f"bit must be in range(8), got {bit}")
    return byte * 8 + (7 - bit)


def state_input_net(byte: int, bit: int) -> str:
    """State-register input net name for ``(byte, bit)``."""
    return f"st_b{byte}_{bit}"


def key_input_net(byte: int, bit: int) -> str:
    """Round-key input net name for ``(byte, bit)``."""
    return f"key_b{byte}_{bit}"


def sbox_output_net_name(byte: int, bit: int) -> str:
    """Net carrying SubBytes output bit ``bit`` of state byte ``byte``."""
    return f"sb_b{byte}_{bit}"


def ciphertext_d_net(byte: int, bit: int) -> str:
    """Net feeding the D input of the ciphertext DFF for ``(byte, bit)``."""
    return f"ct_d_b{byte}_{bit}"


def ciphertext_q_net(byte: int, bit: int) -> str:
    """Q output net of the ciphertext DFF for ``(byte, bit)``."""
    return f"ct_b{byte}_{bit}"


def block_to_net_values(block: Sequence[int], net_namer) -> Dict[str, int]:
    """Expand a 16-byte block into per-bit net values using ``net_namer``."""
    data = validate_block(block)
    values: Dict[str, int] = {}
    for byte in range(BLOCK_BYTES):
        for bit in range(8):
            values[net_namer(byte, bit)] = (data[byte] >> bit) & 1
    return values


def net_values_to_block(values: Mapping[str, int], net_namer) -> bytes:
    """Collapse per-bit net values back into a 16-byte block."""
    out = bytearray(BLOCK_BYTES)
    for byte in range(BLOCK_BYTES):
        acc = 0
        for bit in range(8):
            acc |= (int(values[net_namer(byte, bit)]) & 1) << bit
        out[byte] = acc
    return bytes(out)


@dataclass
class AESLastRoundCircuit:
    """LUT-mapped netlist of the final AES round with helper accessors."""

    netlist: Netlist
    #: Net names tapped by SubBytes-input trojan triggers: the state
    #: register outputs, grouped per byte then per bit (LSB first).
    subbytes_input_nets: List[str] = field(default_factory=list)

    @classmethod
    def build(cls, name: str = "aes_last_round") -> "AESLastRoundCircuit":
        """Construct the last-round netlist."""
        netlist = Netlist(name=name)
        subbytes_inputs: List[str] = []

        for byte in range(BLOCK_BYTES):
            for bit in range(8):
                net = netlist.add_input(state_input_net(byte, bit))
                subbytes_inputs.append(net)
        for byte in range(BLOCK_BYTES):
            for bit in range(8):
                netlist.add_input(key_input_net(byte, bit))

        # SubBytes: one LUT/MUX tree per output bit per byte.
        for byte in range(BLOCK_BYTES):
            input_nets = [state_input_net(byte, bit) for bit in range(8)]
            for bit in range(8):
                table = tuple((SBOX[value] >> bit) & 1 for value in range(256))
                synthesize_function(
                    netlist,
                    prefix=f"sbox{byte}_b{bit}_",
                    input_nets=input_nets,
                    output_net=sbox_output_net_name(byte, bit),
                    table=table,
                )

        # ShiftRows is a byte permutation: output byte i comes from input
        # byte SHIFT_ROWS_PERM[i].  AddRoundKey XORs the permuted SubBytes
        # output with the round key.
        for byte in range(BLOCK_BYTES):
            source_byte = SHIFT_ROWS_PERM[byte]
            for bit in range(8):
                xor_cell = make_lut(
                    f"ark_b{byte}_{bit}",
                    [sbox_output_net_name(source_byte, bit), key_input_net(byte, bit)],
                    ciphertext_d_net(byte, bit),
                    _XOR2_TABLE,
                )
                netlist.add_cell(xor_cell)
                dff = make_dff(
                    f"ctreg_b{byte}_{bit}",
                    ciphertext_d_net(byte, bit),
                    ciphertext_q_net(byte, bit),
                )
                netlist.add_cell(dff)
                netlist.add_output(ciphertext_q_net(byte, bit))

        netlist.validate()
        return cls(netlist=netlist, subbytes_input_nets=subbytes_inputs)

    # -- evaluation helpers ------------------------------------------------

    def input_values(self, state_in: Sequence[int], round_key: Sequence[int]
                     ) -> Dict[str, int]:
        """Primary-input net values for a round input state and round key."""
        values = block_to_net_values(state_in, state_input_net)
        values.update(block_to_net_values(round_key, key_input_net))
        return values

    def evaluate(self, state_in: Sequence[int], round_key: Sequence[int]) -> bytes:
        """Compute the round output (ciphertext) for ``state_in`` and ``round_key``.

        Runs on the compiled kernel; :meth:`evaluate_interpreted` is the
        cell-by-cell reference it is tested against.
        """
        return self.evaluate_batch([state_in], [round_key])[0]

    def evaluate_interpreted(self, state_in: Sequence[int],
                             round_key: Sequence[int]) -> bytes:
        """Reference evaluation through the interpreted netlist walk."""
        values = self.netlist.evaluate(self.input_values(state_in, round_key))
        return net_values_to_block(values, ciphertext_d_net)

    def evaluate_batch(self, states_in: Sequence[Sequence[int]],
                       round_keys: Sequence[Sequence[int]]) -> List[bytes]:
        """Round outputs for many (state, key) stimuli in one array pass.

        Conformance checks (and any caller sweeping stimuli) get the
        whole batch from a single levelised sweep of the compiled
        netlist; each result is bit-identical to :meth:`evaluate_interpreted`.
        """
        if len(states_in) != len(round_keys):
            raise ValueError(
                f"got {len(states_in)} states for {len(round_keys)} round keys"
            )
        state_bytes = np.array([list(validate_block(s)) for s in states_in],
                               dtype=np.uint8)
        key_bytes = np.array([list(validate_block(k)) for k in round_keys],
                             dtype=np.uint8)
        # Primary-input order is st_b{byte}_{bit} then key_b{byte}_{bit}
        # with bit 0 = LSB, which is exactly little-endian unpacking.
        rows = np.concatenate(
            [np.unpackbits(state_bytes, axis=1, bitorder="little"),
             np.unpackbits(key_bytes, axis=1, bitorder="little")],
            axis=1,
        )
        compiled = self.netlist.compiled()
        values = compiled.evaluate_batch(rows)
        d_columns = compiled.columns_for(
            [ciphertext_d_net(byte, bit)
             for byte in range(BLOCK_BYTES) for bit in range(8)]
        )
        packed = np.packbits(values[:, d_columns], axis=1, bitorder="little")
        return [bytes(row) for row in packed]

    # -- structural accessors ------------------------------------------------

    def output_d_net(self, paper_bit: int) -> str:
        """D-input net of the ciphertext DFF for a paper-style bit index."""
        byte, bit = paper_bit_to_byte_bit(paper_bit)
        return ciphertext_d_net(byte, bit)

    def output_q_net(self, paper_bit: int) -> str:
        """Q-output net of the ciphertext DFF for a paper-style bit index."""
        byte, bit = paper_bit_to_byte_bit(paper_bit)
        return ciphertext_q_net(byte, bit)

    def state_net(self, paper_bit: int) -> str:
        """State-register input net for a paper-style bit index."""
        byte, bit = paper_bit_to_byte_bit(paper_bit)
        return state_input_net(byte, bit)

    def key_net(self, paper_bit: int) -> str:
        """Round-key input net for a paper-style bit index."""
        byte, bit = paper_bit_to_byte_bit(paper_bit)
        return key_input_net(byte, bit)

    def output_d_nets(self) -> List[str]:
        """D-input nets of all 128 ciphertext DFFs, in paper-bit order."""
        return [self.output_d_net(i) for i in range(BLOCK_BITS)]

    def lut_equivalent_area(self) -> float:
        """Area of the last-round circuit in LUT equivalents."""
        return self.netlist.lut_equivalent_area()
