"""Timing analysis on structural netlists.

Two complementary engines are provided:

* **Static timing analysis** (:meth:`TimingEngine.static_arrival_times`)
  computes, per net, the worst-case (topological) arrival time — the
  quantity a synthesis tool would report as the critical path.

* **Two-vector (dynamic) timing simulation**
  (:meth:`TimingEngine.two_vector_arrival_times`) computes, per net, the
  time of the *last transition* when the primary inputs switch from a
  "before" vector to an "after" vector.  This is the data-dependent
  delay the paper's clock-glitch measurement observes: a ciphertext bit
  is faulted when the glitched clock period is shorter than the last
  transition arrival at its flip-flop D input (plus setup time).

Both engines here are the *interpreted reference*: they walk the netlist
one cell at a time and define the semantics.  Batched campaigns use the
bit-identical array kernel in :mod:`repro.netlist.compiled`
(:class:`~repro.netlist.compiled.CompiledTimingEngine`), which runs the
same two-vector sweep for every (stimulus pair, die) combination at
once.

Delays are annotated through a :class:`DelayAnnotation`, which combines
the intrinsic cell delay, a per-cell offset (intra-die process
variation, IR-drop from a nearby trojan...), and a per-net routing
delay.  The annotation is deliberately a plain value object so that the
FPGA placement/variation code can construct it without the timing engine
knowing anything about dies or trojans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .cells import Cell, CellType
from .netlist import Netlist, NetlistError

#: Default routing delay per net, in picoseconds (a short intra-slice route).
DEFAULT_NET_DELAY_PS = 120.0


@dataclass
class DelayAnnotation:
    """Per-instance delay annotation for a netlist.

    Attributes
    ----------
    cell_offsets_ps:
        Additional delay per cell instance name (process variation,
        voltage droop, temperature...).  Missing cells get 0.
    net_delays_ps:
        Routing delay per net name.  Missing nets get ``default_net_delay_ps``.
    cell_scale:
        Global multiplicative factor on intrinsic cell delays (inter-die
        process corner; 1.0 = typical).
    default_net_delay_ps:
        Routing delay used for nets without an explicit entry.
    """

    cell_offsets_ps: Dict[str, float] = field(default_factory=dict)
    net_delays_ps: Dict[str, float] = field(default_factory=dict)
    cell_scale: float = 1.0
    default_net_delay_ps: float = DEFAULT_NET_DELAY_PS

    def cell_delay_ps(self, cell: Cell) -> float:
        """Total propagation delay of ``cell``."""
        base = cell.intrinsic_delay_ps() * self.cell_scale
        return max(0.0, base + self.cell_offsets_ps.get(cell.name, 0.0))

    def net_delay_ps(self, net: str) -> float:
        """Routing delay of ``net``."""
        return max(0.0, self.net_delays_ps.get(net, self.default_net_delay_ps))

    def cell_delay_vector(self, cells: Sequence[Cell]) -> np.ndarray:
        """:meth:`cell_delay_ps` for many cells as one float64 vector.

        Element ``i`` is bit-identical to ``cell_delay_ps(cells[i])``
        (the same multiply/add/clamp applied elementwise); the compiled
        timing engine gathers from this vector instead of calling the
        scalar accessor per cell per stimulus.
        """
        intrinsic = np.array([cell.intrinsic_delay_ps() for cell in cells])
        offsets = np.array([self.cell_offsets_ps.get(cell.name, 0.0)
                            for cell in cells])
        return np.maximum(0.0, intrinsic * self.cell_scale + offsets)

    def net_delay_vector(self, nets: Sequence[str]) -> np.ndarray:
        """:meth:`net_delay_ps` for many nets as one float64 vector."""
        default = self.default_net_delay_ps
        return np.maximum(0.0, np.array(
            [self.net_delays_ps.get(net, default) for net in nets]
        ))

    def copy(self) -> "DelayAnnotation":
        """Deep-enough copy (dictionaries are copied)."""
        return DelayAnnotation(
            cell_offsets_ps=dict(self.cell_offsets_ps),
            net_delays_ps=dict(self.net_delays_ps),
            cell_scale=self.cell_scale,
            default_net_delay_ps=self.default_net_delay_ps,
        )

    def add_cell_offset(self, cell_name: str, offset_ps: float) -> None:
        """Accumulate an extra delay on one cell instance."""
        self.cell_offsets_ps[cell_name] = (
            self.cell_offsets_ps.get(cell_name, 0.0) + offset_ps
        )

    def add_net_delay(self, net: str, extra_ps: float) -> None:
        """Accumulate extra routing delay on one net."""
        current = self.net_delays_ps.get(net, self.default_net_delay_ps)
        self.net_delays_ps[net] = current + extra_ps


@dataclass
class TwoVectorResult:
    """Result of a two-vector timing simulation.

    Attributes
    ----------
    values_before / values_after:
        Net values for the two input vectors.
    arrival_ps:
        Per-net time of the last transition (None if the net is stable).
    """

    values_before: Dict[str, int]
    values_after: Dict[str, int]
    arrival_ps: Dict[str, Optional[float]]

    def transition_time(self, net: str) -> Optional[float]:
        """Arrival time of the last transition on ``net`` (None if stable)."""
        return self.arrival_ps.get(net)

    def toggled(self, net: str) -> bool:
        """True if ``net`` changes value between the two vectors."""
        return self.values_before.get(net) != self.values_after.get(net)

    def toggling_nets(self) -> List[str]:
        """Nets whose value differs between the two vectors."""
        return [
            net for net in self.values_after
            if self.values_before.get(net) != self.values_after.get(net)
        ]


class TimingEngine:
    """Static and dynamic timing analysis for one netlist.

    Parameters
    ----------
    netlist:
        The netlist to analyse; it must validate.
    annotation:
        Delay annotation; defaults to intrinsic cell delays and a uniform
        routing delay.
    input_arrival_ps:
        Arrival time of the primary inputs and register outputs (models
        the clock-to-Q delay of the launching registers).
    """

    def __init__(self, netlist: Netlist,
                 annotation: Optional[DelayAnnotation] = None,
                 input_arrival_ps: float = 0.0):
        netlist.validate()
        self.netlist = netlist
        self.annotation = annotation or DelayAnnotation()
        self.input_arrival_ps = float(input_arrival_ps)
        self._topo = netlist.topological_order()

    # -- static timing analysis ------------------------------------------

    def static_arrival_times(self) -> Dict[str, float]:
        """Worst-case arrival time per net, ignoring data dependence."""
        arrivals: Dict[str, float] = {}
        for net in self.netlist.inputs:
            arrivals[net] = self.input_arrival_ps
        for cell in self.netlist.cells.values():
            if cell.is_sequential or cell.is_constant:
                arrivals[cell.output] = self.input_arrival_ps

        for cell in self._topo:
            input_arrivals = [
                arrivals.get(net, self.input_arrival_ps)
                + self.annotation.net_delay_ps(net)
                for net in cell.inputs
            ]
            arrivals[cell.output] = (
                max(input_arrivals) + self.annotation.cell_delay_ps(cell)
            )
        return arrivals

    def critical_path_ps(self, nets: Optional[Iterable[str]] = None) -> float:
        """Worst-case arrival over ``nets`` (default: DFF D inputs, else outputs)."""
        arrivals = self.static_arrival_times()
        if nets is None:
            registers = self.netlist.register_cells()
            if registers:
                nets = [cell.inputs[0] for cell in registers]
            else:
                nets = list(self.netlist.outputs)
        candidates = [
            arrivals[n] + self.annotation.net_delay_ps(n) for n in nets if n in arrivals
        ]
        if not candidates:
            raise NetlistError("no observable nets for critical path computation")
        return max(candidates)

    # -- two-vector dynamic timing ------------------------------------------

    def two_vector_arrival_times(self, inputs_before: Mapping[str, int],
                                 inputs_after: Mapping[str, int]
                                 ) -> TwoVectorResult:
        """Simulate the transition ``inputs_before -> inputs_after``.

        The last-transition model is used: a cell output transitions only
        if its steady-state value differs between the two vectors, and the
        transition is assumed to happen after the latest transition among
        its toggling inputs plus the cell delay.  Hazard pulses on stable
        outputs are not modelled; this matches the granularity the
        glitch-step measurement can observe (35 ps steps over ~100 ps
        gate delays).
        """
        values_before = self.netlist.evaluate(dict(inputs_before))
        values_after = self.netlist.evaluate(dict(inputs_after))

        arrivals: Dict[str, Optional[float]] = {}
        for net in self.netlist.inputs:
            if values_before.get(net) != values_after.get(net):
                arrivals[net] = self.input_arrival_ps
            else:
                arrivals[net] = None
        for cell in self.netlist.cells.values():
            if cell.is_sequential or cell.is_constant:
                arrivals[cell.output] = None

        for cell in self._topo:
            out_net = cell.output
            if values_before[out_net] == values_after[out_net]:
                arrivals[out_net] = None
                continue
            toggling_inputs = [
                (net, arrivals.get(net))
                for net in cell.inputs
                if values_before.get(net) != values_after.get(net)
                and arrivals.get(net) is not None
            ]
            if not toggling_inputs:
                # Output toggles although no input toggles: can only happen
                # if an input net is missing from the vectors; treat as a
                # transition launched at the clock edge.
                launch = self.input_arrival_ps
            else:
                launch = max(
                    arrival + self.annotation.net_delay_ps(net)
                    for net, arrival in toggling_inputs
                )
            arrivals[out_net] = launch + self.annotation.cell_delay_ps(cell)

        return TwoVectorResult(
            values_before=values_before,
            values_after=values_after,
            arrival_ps=arrivals,
        )

    def endpoint_delays(self, result: TwoVectorResult,
                        endpoint_nets: Sequence[str]) -> Dict[str, Optional[float]]:
        """Arrival time at each endpoint net, including its routing delay.

        ``None`` means the endpoint is stable for this input transition
        (it cannot be faulted however short the clock period, apart from
        hold issues which are out of scope).
        """
        delays: Dict[str, Optional[float]] = {}
        for net in endpoint_nets:
            arrival = result.arrival_ps.get(net)
            if arrival is None:
                delays[net] = None
            else:
                delays[net] = arrival + self.annotation.net_delay_ps(net)
        return delays
