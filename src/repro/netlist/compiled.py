"""Compiled netlist kernel: vectorised evaluation and array-based timing.

The interpreted :meth:`~repro.netlist.netlist.Netlist.evaluate` walks a
dict of per-net ints one cell at a time — perfect as an executable
specification, far too slow for campaigns that sweep thousands of
(stimulus, die) combinations.  This module lowers a validated netlist
**once** into flat NumPy arrays and then evaluates *all stimulus vectors
at once*:

* every combinational cell is normalised to a truth-table LUT (MUX2,
  XOR2... become small tables), stored in one flat ``uint8`` array with
  per-cell offsets;
* cells are grouped into **topological levels**; one level is evaluated
  with a handful of vectorised gathers (address = packed input bits,
  output = ``tables[offset + address]``) over a ``(num_vectors,
  num_nets)`` value matrix — the Python interpreter runs O(levels x
  max_arity) operations instead of O(cells x vectors);
* :class:`CompiledTimingEngine` runs the same levelised sweep over
  ``float64`` *arrival* arrays, broadcasting per-die cell/net delay
  vectors so a single pass covers every (stimulus pair, die)
  combination of a delay campaign.

Both kernels are **bit-identical** to the interpreted walks in
:mod:`repro.netlist.netlist` and :mod:`repro.netlist.timing` (the same
float operations are applied in an order whose result is unchanged);
the interpreted implementations remain the serial reference the
equivalence tests and benchmarks compare against — the same contract
``EMSimulator.acquire_batch`` established for trace acquisition.

Compiled netlists are cached on the netlist itself
(:meth:`~repro.netlist.netlist.Netlist.compiled`); structural edits
invalidate the cache together with the topological order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend import active_backend
from .cells import Cell, CellType
from .netlist import Netlist, NetlistError
from .timing import DelayAnnotation, TwoVectorResult

#: Upper bound on the boolean toggle-chunk size (elements) the
#: switching-activity kernel materialises at once; bounds peak RSS at
#: million-die scale instead of the full (groups x states x nets)
#: tensor.
_TOGGLE_CHUNK_ELEMS = 1 << 21

#: Truth table of the MUX2 primitive in LUT form.  Input order is the
#: cell's ``(select, in0, in1)``, with input 0 as address bit 0:
#: ``out = in1 if select else in0``.
_MUX2_TABLE = (0, 0, 1, 0, 0, 1, 1, 1)

#: LUT forms of the fixed-function primitives (input 0 = address bit 0).
_PRIMITIVE_TABLES: Dict[CellType, Tuple[int, ...]] = {
    CellType.MUX2: _MUX2_TABLE,
    CellType.XOR2: (0, 1, 1, 0),
    CellType.AND2: (0, 0, 0, 1),
    CellType.OR2: (0, 1, 1, 1),
    CellType.INV: (1, 0),
    CellType.BUF: (0, 1),
}


def _cell_table(cell: Cell) -> Tuple[int, ...]:
    """The truth table realising ``cell`` (LUT normal form)."""
    if cell.cell_type == CellType.LUT:
        assert cell.truth_table is not None
        return cell.truth_table
    try:
        return _PRIMITIVE_TABLES[cell.cell_type]
    except KeyError as exc:  # pragma: no cover - guarded by caller
        raise NetlistError(
            f"cell {cell.name!r} of type {cell.cell_type} has no LUT form"
        ) from exc


@dataclass
class CompiledNetlist:
    """A netlist lowered to flat arrays for batched evaluation.

    The value matrix convention: one row per stimulus vector, one column
    per net (column order is :attr:`net_names`), plus one trailing
    always-zero padding column used to make every cell's input list the
    same width.  All public methods hide the padding column.
    """

    netlist: Netlist
    #: Net name -> column index (excludes the padding column).
    net_index: Dict[str, int]
    #: Column order of the value matrices.
    net_names: List[str]
    #: Columns of the declared primary inputs, in declaration order.
    input_columns: np.ndarray
    #: Combinational cells in levelised topological order.
    comb_cell_names: List[str]
    #: Per-cell input arity, shape ``(num_comb,)``.
    arity: np.ndarray
    #: Per-cell input columns padded to ``max_arity`` with the zero column.
    input_idx: np.ndarray
    #: Per-cell output column, shape ``(num_comb,)``.
    output_idx: np.ndarray
    #: Per-cell offset into :attr:`tables`.
    table_offset: np.ndarray
    #: Concatenated truth tables of every combinational cell.
    tables: np.ndarray
    #: ``(start, end)`` ranges into the cell arrays, one per topo level.
    level_slices: List[Tuple[int, int]]
    #: Columns of CONST1 outputs (CONST0 columns stay zero).
    const_one_columns: np.ndarray
    #: DFF output columns and their power-up values.
    dff_columns: np.ndarray
    dff_init: np.ndarray
    #: DFF output net name -> column (register-value overrides).
    dff_index: Dict[str, int]
    #: Output column of *every* cell (cells-dict order) and the flattened
    #: input-pin columns of every cell — the two gather tables the
    #: toggle-count (switching-activity) kernel sums over.
    all_output_columns: np.ndarray
    all_pin_columns: np.ndarray

    # -- construction -----------------------------------------------------

    @classmethod
    def from_netlist(cls, netlist: Netlist) -> "CompiledNetlist":
        """Lower ``netlist`` (validating it) into flat arrays."""
        netlist.validate()
        topo = netlist.topological_order()

        net_names: List[str] = []
        net_index: Dict[str, int] = {}

        def column(net: str) -> int:
            if net not in net_index:
                net_index[net] = len(net_names)
                net_names.append(net)
            return net_index[net]

        for net in netlist.inputs:
            column(net)
        for cell in netlist.cells.values():
            column(cell.output)
            for net in cell.inputs:
                column(net)

        num_nets = len(net_names)
        zero_column = num_nets  # trailing padding column, always 0

        # Levelise: level(cell) = 1 + max(level of combinational drivers).
        drivers = {cell.output: cell for cell in netlist.cells.values()}
        level_of: Dict[str, int] = {}
        for cell in topo:
            level = 0
            for net in cell.inputs:
                driver = drivers.get(net)
                if driver is not None and driver.is_combinational:
                    level = max(level, level_of[driver.name] + 1)
            level_of[cell.name] = level
        ordered = sorted(topo, key=lambda c: (level_of[c.name],))

        num_comb = len(ordered)
        max_arity = max((len(c.inputs) for c in ordered), default=1)
        arity = np.zeros(num_comb, dtype=np.int32)
        input_idx = np.full((num_comb, max_arity), zero_column, dtype=np.int32)
        output_idx = np.zeros(num_comb, dtype=np.int32)
        table_offset = np.zeros(num_comb, dtype=np.int32)
        table_chunks: List[np.ndarray] = []
        offset = 0
        level_slices: List[Tuple[int, int]] = []
        level_start = 0
        for position, cell in enumerate(ordered):
            if position and level_of[cell.name] != level_of[ordered[position - 1].name]:
                level_slices.append((level_start, position))
                level_start = position
            arity[position] = len(cell.inputs)
            for pin, net in enumerate(cell.inputs):
                input_idx[position, pin] = net_index[net]
            output_idx[position] = net_index[cell.output]
            table = np.asarray(_cell_table(cell), dtype=np.uint8)
            table_offset[position] = offset
            table_chunks.append(table)
            offset += table.size
        if num_comb:
            level_slices.append((level_start, num_comb))
        tables = (np.concatenate(table_chunks) if table_chunks
                  else np.zeros(0, dtype=np.uint8))

        const_one = [net_index[c.output] for c in netlist.cells.values()
                     if c.cell_type == CellType.CONST1]
        dff_cells = [c for c in netlist.cells.values() if c.is_sequential]
        dff_columns = np.array([net_index[c.output] for c in dff_cells],
                               dtype=np.int32)
        dff_init = np.array([c.init & 1 for c in dff_cells], dtype=np.uint8)
        dff_index = {c.output: net_index[c.output] for c in dff_cells}

        all_outputs = np.array(
            [net_index[c.output] for c in netlist.cells.values()],
            dtype=np.int32,
        )
        all_pins = np.array(
            [net_index[net] for c in netlist.cells.values() for net in c.inputs],
            dtype=np.int32,
        )

        return cls(
            netlist=netlist,
            net_index=net_index,
            net_names=net_names,
            input_columns=np.array([net_index[n] for n in netlist.inputs],
                                   dtype=np.int32),
            comb_cell_names=[c.name for c in ordered],
            arity=arity,
            input_idx=input_idx,
            output_idx=output_idx,
            table_offset=table_offset,
            tables=tables,
            level_slices=level_slices,
            const_one_columns=np.array(const_one, dtype=np.int32),
            dff_columns=dff_columns,
            dff_init=dff_init,
            dff_index=dff_index,
            all_output_columns=all_outputs,
            all_pin_columns=all_pins,
        )

    # -- basic accessors ----------------------------------------------------

    @property
    def num_nets(self) -> int:
        return len(self.net_names)

    @property
    def num_comb_cells(self) -> int:
        return len(self.comb_cell_names)

    def columns_for(self, nets: Sequence[str]) -> np.ndarray:
        """Value-matrix columns of ``nets`` (raises on unknown nets)."""
        try:
            return np.array([self.net_index[net] for net in nets],
                            dtype=np.int32)
        except KeyError as exc:
            raise NetlistError(
                f"net {exc.args[0]!r} does not exist in netlist "
                f"{self.netlist.name!r}"
            ) from exc

    # -- batched evaluation ---------------------------------------------------

    def _blank_state(self, num_vectors: int) -> np.ndarray:
        """Value matrix with constants and DFF power-up values applied."""
        state = np.zeros((num_vectors, self.num_nets + 1), dtype=np.uint8)
        if self.const_one_columns.size:
            state[:, self.const_one_columns] = 1
        if self.dff_columns.size:
            state[:, self.dff_columns] = self.dff_init[None, :]
        return state

    def evaluate_batch(self, input_rows: np.ndarray,
                       input_nets: Optional[Sequence[str]] = None,
                       register_rows: Optional[np.ndarray] = None,
                       register_nets: Optional[Sequence[str]] = None
                       ) -> np.ndarray:
        """Evaluate every net for a batch of stimulus vectors.

        Parameters
        ----------
        input_rows:
            ``(num_vectors, len(input_nets))`` 0/1 matrix.
        input_nets:
            Net driven by each column of ``input_rows``; defaults to the
            netlist's declared primary inputs (in declaration order).
            Must cover every declared input; nets unknown to the netlist
            are ignored (the interpreted walk also accepts and ignores
            stray stimulus entries).
        register_rows / register_nets:
            Optional per-vector DFF output (Q) values, same convention.
            Entries for nets that are not DFF outputs are ignored, as in
            :meth:`Netlist.evaluate`.

        Returns
        -------
        ``(num_vectors, num_nets)`` uint8 matrix; columns follow
        :attr:`net_names`.

        The sweep itself dispatches on the active
        :mod:`repro.backend`: the default ``numpy`` backend runs the
        uint8 lane kernel (:meth:`_sweep`, the pinned reference), a
        backend with ``bitslice=True`` routes through the packed uint64
        bitplane kernel (:mod:`repro.netlist.bitslice`) — bit-identical
        results either way.
        """
        state = self._prepare_state(input_rows, input_nets,
                                    register_rows, register_nets)
        backend = active_backend()
        if backend.bitslice:
            return self.bitsliced().evaluate_state(state, xp=backend.xp)
        self._sweep(state)
        return state[:, : self.num_nets]

    def _prepare_state(self, input_rows: np.ndarray,
                       input_nets: Optional[Sequence[str]] = None,
                       register_rows: Optional[np.ndarray] = None,
                       register_nets: Optional[Sequence[str]] = None
                       ) -> np.ndarray:
        """Validate a stimulus batch and build the padded value matrix.

        Returns the ``(num_vectors, num_nets + 1)`` uint8 state with
        input, constant and register planes written — the matrix both
        sweep kernels (uint8 lanes and uint64 bitplanes) consume.
        """
        input_rows = np.ascontiguousarray(input_rows, dtype=np.uint8) & 1
        if input_rows.ndim != 2:
            raise NetlistError("input_rows must be a 2-D (vectors x nets) matrix")
        if input_nets is None:
            input_nets = self.netlist.inputs
        input_nets = list(input_nets)
        if input_rows.shape[1] != len(input_nets):
            raise NetlistError(
                f"input_rows has {input_rows.shape[1]} columns for "
                f"{len(input_nets)} input nets"
            )
        missing = set(self.netlist.inputs) - set(input_nets)
        if missing:
            raise NetlistError(
                f"missing value for primary input {sorted(missing)[0]!r}"
            )

        state = self._blank_state(input_rows.shape[0])
        known = [pos for pos, net in enumerate(input_nets)
                 if net in self.net_index]
        cols = np.array([self.net_index[input_nets[pos]] for pos in known],
                        dtype=np.int32)
        known_nets = [input_nets[pos] for pos in known]
        if len(set(known_nets)) != len(known_nets):
            # Duplicate known nets would make the fancy assignment below
            # depend on numpy's (undefined) duplicate-index write order;
            # the interpreted reference takes a Mapping, which cannot
            # express duplicates at all — so neither do we.  Duplicates
            # among *stray* (unknown) nets stay ignored, as before.
            duplicates = sorted({net for net in known_nets
                                 if known_nets.count(net) > 1})
            raise NetlistError(
                f"duplicate stimulus net(s) {duplicates} in input_nets"
            )
        state[:, cols] = input_rows[:, known]
        # Constants and register values override stray stimulus entries,
        # exactly as the interpreted walk's write order does.
        if self.const_one_columns.size:
            state[:, self.const_one_columns] = 1
        if self.dff_columns.size:
            state[:, self.dff_columns] = self.dff_init[None, :]
        if register_rows is not None:
            register_rows = np.ascontiguousarray(register_rows,
                                                 dtype=np.uint8) & 1
            register_nets = list(register_nets or [])
            if register_rows.ndim != 2 or \
                    register_rows.shape[1] != len(register_nets):
                raise NetlistError(
                    "register_rows must be (vectors x len(register_nets))"
                )
            if register_rows.shape[0] != input_rows.shape[0]:
                raise NetlistError(
                    "register_rows and input_rows must have the same "
                    "number of vectors"
                )
            reg_known = [pos for pos, net in enumerate(register_nets)
                         if net in self.dff_index]
            reg_nets_known = [register_nets[pos] for pos in reg_known]
            if len(set(reg_nets_known)) != len(reg_nets_known):
                duplicates = sorted({net for net in reg_nets_known
                                     if reg_nets_known.count(net) > 1})
                raise NetlistError(
                    f"duplicate register net(s) {duplicates} in register_nets"
                )
            reg_cols = np.array(
                [self.dff_index[register_nets[pos]] for pos in reg_known],
                dtype=np.int32,
            )
            if reg_cols.size:
                state[:, reg_cols] = register_rows[:, reg_known]
        return state

    @cached_property
    def _level_widths_arities(self) -> List[Tuple[int, int]]:
        """Per level: (cell count, max arity) — sized once per lowering."""
        return [(end - start, int(self.arity[start:end].max()))
                for start, end in self.level_slices]

    def _sweep(self, state: np.ndarray) -> None:
        """Levelised vectorised evaluation over a padded value matrix.

        The per-level LUT addresses accumulate into one reused int32
        scratch pair (sized to the widest level) via ufunc ``out=``
        writes, instead of re-materialising an int32 copy of every
        gathered pin slice — same arithmetic, no per-pin temporaries.
        The scratch is kept flat and reshaped per level so every ufunc
        writes a contiguous block (a ``[:, :width]`` view would stride).
        """
        if not self.level_slices:
            return
        num_vectors = state.shape[0]
        max_width = max(width for width, _ in self._level_widths_arities)
        address = np.empty(num_vectors * max_width, dtype=np.int32)
        shifted = np.empty(num_vectors * max_width, dtype=np.int32)
        for (start, end), (width, arity) in zip(self.level_slices,
                                                self._level_widths_arities):
            level_elems = num_vectors * width
            level_address = address[:level_elems].reshape(num_vectors, width)
            level_shifted = shifted[:level_elems].reshape(num_vectors, width)
            np.copyto(level_address, state[:, self.input_idx[start:end, 0]],
                      casting="unsafe")
            for pin in range(1, arity):
                # Padded pins gather the always-zero column and therefore
                # contribute nothing to the address.  The cast and the
                # shift run as separate passes: a dtype-converting ufunc
                # ``out=`` would fall into numpy's buffered (slower)
                # inner loop, while copyto casts at memcpy speed.
                np.copyto(level_shifted, state[:, self.input_idx[start:end,
                                                                 pin]],
                          casting="unsafe")
                np.left_shift(level_shifted, pin, out=level_shifted)
                np.bitwise_or(level_address, level_shifted,
                              out=level_address)
            np.add(level_address, self.table_offset[start:end][None, :],
                   out=level_address)
            state[:, self.output_idx[start:end]] = self.tables[level_address]

    def bitsliced(self) -> "BitslicedNetlist":
        """The uint64 bitplane lowering of this netlist (cached).

        Lowered lazily on first use (the bitslice backend's dispatch or
        a direct caller) and cached on the instance, mirroring
        :meth:`Netlist.compiled`.
        """
        cached = self.__dict__.get("_bitsliced_cache")
        if cached is None:
            from .bitslice import BitslicedNetlist
            cached = BitslicedNetlist.from_compiled(self)
            self.__dict__["_bitsliced_cache"] = cached
        return cached

    def evaluate(self, input_values: Mapping[str, int],
                 register_values: Optional[Mapping[str, int]] = None
                 ) -> Dict[str, int]:
        """Single-vector convenience mirroring :meth:`Netlist.evaluate`.

        Returns the same net -> 0/1 dict as the interpreted walk,
        including stray stimulus nets passed through unchanged.
        """
        input_nets = list(input_values)
        rows = np.array([[int(input_values[n]) & 1 for n in input_nets]],
                        dtype=np.uint8)
        register_rows = None
        register_nets: Optional[List[str]] = None
        if register_values is not None:
            register_nets = list(register_values)
            register_rows = np.array(
                [[int(register_values[n]) & 1 for n in register_nets]],
                dtype=np.uint8,
            )
        values = self.evaluate_batch(rows, input_nets, register_rows,
                                     register_nets)
        result = {net: int(values[0, col])
                  for net, col in self.net_index.items()}
        for net in input_nets:  # stray nets the netlist does not know
            if net not in result:
                result[net] = int(input_values[net]) & 1
        return result

    # -- switching activity ---------------------------------------------------

    @cached_property
    def _toggle_gather(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Unique toggle columns plus int64 multiplicity weights.

        ``all_pin_columns`` holds one entry per cell input *pin*, so a
        net fanning out to several pins appears several times; summing
        a gathered boolean over those duplicates equals a weighted sum
        over the unique columns — which is what the lean toggle kernel
        computes.
        """
        combined = np.concatenate([self.all_output_columns,
                                   self.all_pin_columns])
        unique_cols = np.unique(combined) if combined.size else \
            np.zeros(0, dtype=np.int64)
        length = self.num_nets + 1
        output_weights = np.bincount(self.all_output_columns,
                                     minlength=length)[unique_cols]
        pin_weights = np.bincount(self.all_pin_columns,
                                  minlength=length)[unique_cols]
        return (unique_cols.astype(np.int64),
                output_weights.astype(np.int64),
                pin_weights.astype(np.int64))

    def toggle_counts(self, values: np.ndarray
                      ) -> "Tuple[np.ndarray, np.ndarray]":
        """Per-transition output and input-pin toggle counts.

        ``values`` is an ``(num_states, num_nets)`` matrix of successive
        evaluations (e.g. one row per clock cycle); the result is a pair
        of ``(num_states - 1,)`` int arrays counting, for each
        consecutive pair of rows, how many cell outputs and how many
        cell input pins changed value — the quantities
        :meth:`~repro.trojan.base.HardwareTrojan._netlist_toggle_counts`
        derives from two interpreted evaluations.

        A ``(num_groups, num_states, num_nets)`` tensor counts every
        group independently along its own state axis (no toggles are
        counted across group boundaries) and returns
        ``(num_groups, num_states - 1)`` arrays — one batched pass for
        e.g. every encryption of a stimulus sweep.
        """
        if values.ndim not in (2, 3) or values.shape[-1] != self.num_nets:
            raise NetlistError(
                f"values must be (states x {self.num_nets}) or "
                f"(groups x states x {self.num_nets}), got {values.shape}"
            )
        # Lean kernel: instead of materialising the full (groups x
        # states x nets) boolean toggle tensor plus two gathered copies
        # (the peak-RSS driver at million-die scale), gather only the
        # columns any cell output or pin actually uses, one bounded
        # transition chunk at a time, and fold fan-out multiplicity
        # into int64 weight vectors.  Results are identical.
        squeeze = values.ndim == 2
        tensor = values[None] if squeeze else values
        groups, states = tensor.shape[0], tensor.shape[1]
        transitions = max(states - 1, 0)
        unique_cols, output_weights, pin_weights = self._toggle_gather
        output_toggles = np.zeros((groups, transitions), dtype=np.int64)
        pin_toggles = np.zeros((groups, transitions), dtype=np.int64)
        if transitions and unique_cols.size:
            step = max(1, _TOGGLE_CHUNK_ELEMS
                       // max(1, groups * unique_cols.size))
            for begin in range(0, transitions, step):
                stop = min(transitions, begin + step)
                before = tensor[:, begin:stop][..., unique_cols]
                after = tensor[:, begin + 1:stop + 1][..., unique_cols]
                flat = (before != after).reshape(-1, unique_cols.size)
                output_toggles[:, begin:stop] = \
                    (flat @ output_weights).reshape(groups, stop - begin)
                pin_toggles[:, begin:stop] = \
                    (flat @ pin_weights).reshape(groups, stop - begin)
        if squeeze:
            return output_toggles[0], pin_toggles[0]
        return output_toggles, pin_toggles


class CompiledTimingEngine:
    """Array-based two-vector timing over one compiled netlist.

    The engine evaluates the last-transition arrival model of
    :meth:`~repro.netlist.timing.TimingEngine.two_vector_arrival_times`
    for a whole batch of stimulus transitions and a whole batch of delay
    annotations (dies) in one levelised sweep: arrivals live in a
    ``(num_pairs, num_dies, num_nets)`` float64 array (NaN = stable
    net), and per-die cell/net delay vectors broadcast across the pair
    axis.  Each element equals — bit for bit — what the interpreted
    engine produces for that (pair, die).

    Parameters
    ----------
    compiled:
        A :class:`CompiledNetlist` (or a :class:`Netlist`, lowered via
        its cache).
    annotations:
        One :class:`DelayAnnotation` per die (or a single annotation).
    input_arrival_ps:
        Launch time of toggling primary inputs.
    """

    def __init__(self, compiled: Union[CompiledNetlist, Netlist],
                 annotations: Union[DelayAnnotation,
                                    Sequence[DelayAnnotation], None] = None,
                 input_arrival_ps: float = 0.0):
        if isinstance(compiled, Netlist):
            compiled = compiled.compiled()
        self.compiled = compiled
        if annotations is None:
            annotations = DelayAnnotation()
        if isinstance(annotations, DelayAnnotation):
            annotations = [annotations]
        self.annotations: List[DelayAnnotation] = list(annotations)
        if not self.annotations:
            raise ValueError("at least one delay annotation is required")
        self.input_arrival_ps = float(input_arrival_ps)

        netlist = compiled.netlist
        comb_cells = [netlist.cells[name] for name in compiled.comb_cell_names]
        # (num_dies, num_comb) cell delays and (num_dies, num_nets + 1)
        # net delays; the padding column keeps gathers in-bounds (it is
        # masked out by the never-toggling padded inputs).
        self.cell_delays = np.stack([
            annotation.cell_delay_vector(comb_cells)
            for annotation in self.annotations
        ])
        net_delays = np.stack([
            annotation.net_delay_vector(compiled.net_names)
            for annotation in self.annotations
        ])
        self.net_delays = np.concatenate(
            [net_delays, np.zeros((len(self.annotations), 1))], axis=1
        )

    @property
    def num_dies(self) -> int:
        return len(self.annotations)

    # -- batched two-vector timing -----------------------------------------------

    def two_vector_arrivals(self, before_rows: np.ndarray,
                            after_rows: np.ndarray,
                            input_nets: Optional[Sequence[str]] = None
                            ) -> "Tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Arrival times for a batch of input transitions on every die.

        Returns ``(values_before, values_after, arrivals)`` where the
        value matrices have shape ``(num_pairs, num_nets)`` and
        ``arrivals`` has shape ``(num_pairs, num_dies, num_nets)`` with
        NaN marking nets that are stable for that transition.
        """
        compiled = self.compiled
        values_before = compiled.evaluate_batch(before_rows, input_nets)
        values_after = compiled.evaluate_batch(after_rows, input_nets)
        num_pairs = values_before.shape[0]
        num_dies = self.num_dies

        toggles = np.concatenate(
            [values_before != values_after,
             np.zeros((num_pairs, 1), dtype=bool)], axis=1
        )
        arrivals = np.full((num_pairs, num_dies, compiled.num_nets + 1),
                           np.nan)
        in_cols = compiled.input_columns
        arrivals[:, :, in_cols] = np.where(
            toggles[:, None, in_cols], self.input_arrival_ps, np.nan
        )

        for start, end in compiled.level_slices:
            arity = int(compiled.arity[start:end].max())
            out_cols = compiled.output_idx[start:end]
            launch = np.full((num_pairs, num_dies, end - start), -np.inf)
            for pin in range(arity):
                pin_cols = compiled.input_idx[start:end, pin]
                pin_toggles = toggles[:, pin_cols]          # (P, C)
                pin_arrivals = arrivals[:, :, pin_cols]     # (P, D, C)
                candidate = pin_arrivals + self.net_delays[None, :, pin_cols]
                valid = pin_toggles[:, None, :] & ~np.isnan(pin_arrivals)
                launch = np.maximum(launch,
                                    np.where(valid, candidate, -np.inf))
            # An output that toggles although no (known-arrival) input
            # toggles launches at the clock edge, as in the interpreted
            # engine.
            launch = np.where(np.isneginf(launch), self.input_arrival_ps,
                              launch)
            arrival_out = launch + self.cell_delays[None, :, start:end]
            arrivals[:, :, out_cols] = np.where(
                toggles[:, None, out_cols], arrival_out, np.nan
            )
        return values_before, values_after, arrivals[:, :, : compiled.num_nets]

    def endpoint_arrivals(self, arrivals: np.ndarray,
                          endpoint_nets: Sequence[str]) -> np.ndarray:
        """Arrival at each endpoint including its routing delay.

        ``arrivals`` is the third element of
        :meth:`two_vector_arrivals`; the result has shape
        ``(num_pairs, num_dies, len(endpoint_nets))`` with NaN for
        stable endpoints (the interpreted engine's ``None``).
        """
        cols = self.compiled.columns_for(endpoint_nets)
        return arrivals[:, :, cols] + self.net_delays[None, :, cols]

    # -- interpreted-compatible convenience ------------------------------------

    def two_vector_result(self, inputs_before: Mapping[str, int],
                          inputs_after: Mapping[str, int],
                          die: int = 0) -> TwoVectorResult:
        """One transition on one die, as a :class:`TwoVectorResult`.

        Drop-in for the interpreted
        :meth:`~repro.netlist.timing.TimingEngine.two_vector_arrival_times`
        (used by the equivalence tests; hot callers use the batched
        matrix API directly).
        """
        input_nets = list(inputs_before)
        if set(input_nets) != set(inputs_after):
            raise NetlistError(
                "before and after vectors must drive the same nets"
            )
        before_rows = np.array(
            [[int(inputs_before[n]) & 1 for n in input_nets]], dtype=np.uint8
        )
        after_rows = np.array(
            [[int(inputs_after[n]) & 1 for n in input_nets]], dtype=np.uint8
        )
        values_before, values_after, arrivals = self.two_vector_arrivals(
            before_rows, after_rows, input_nets
        )
        compiled = self.compiled
        known = set(compiled.net_index)
        arrival_ps: Dict[str, Optional[float]] = {}
        for net, col in compiled.net_index.items():
            value = float(arrivals[0, die, col])
            arrival_ps[net] = None if np.isnan(value) else value
        before_dict = {net: int(values_before[0, col])
                       for net, col in compiled.net_index.items()}
        after_dict = {net: int(values_after[0, col])
                      for net, col in compiled.net_index.items()}
        for net in input_nets:
            if net not in known:
                before_dict[net] = int(inputs_before[net]) & 1
                after_dict[net] = int(inputs_after[net]) & 1
        return TwoVectorResult(
            values_before=before_dict,
            values_after=after_dict,
            arrival_ps=arrival_ps,
        )
