"""Truth-table driven synthesis of LUT networks.

Real FPGA tool flows map arbitrary Boolean functions onto 6-input LUTs
plus the dedicated F7/F8 multiplexers of a slice.  This module provides
the small synthesiser the reproduction needs:

* :func:`synthesize_function` — Shannon decomposition of an n-input
  function (n can exceed 6) into a LUT6 + MUX tree, exactly the shape a
  Xilinx mapper produces for the 8-input AES S-box output bits,
* :func:`synthesize_reduction_tree` — wide AND/OR/XOR reduction trees
  built from 6-input LUT stages (used by the trojan trigger comparators
  and the key-addition network).

Both return the list of created cells; callers add them to a
:class:`~repro.netlist.netlist.Netlist`.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from .cells import MAX_LUT_INPUTS, Cell, make_lut, make_mux2
from .netlist import Netlist, NetlistError


class SynthesisError(Exception):
    """Raised when a function cannot be synthesised."""


def truth_table_from_function(func: Callable[[int], int], num_inputs: int
                              ) -> Tuple[int, ...]:
    """Tabulate ``func`` over all ``2**num_inputs`` input combinations.

    ``func`` receives the input combination as an integer whose bit ``i``
    is the value of input ``i``.
    """
    if num_inputs < 0:
        raise SynthesisError("num_inputs must be non-negative")
    size = 1 << num_inputs
    return tuple(int(func(i)) & 1 for i in range(size))


def cofactors(table: Sequence[int], variable: int
              ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Shannon cofactors of ``table`` with respect to input ``variable``.

    Returns ``(f0, f1)`` where ``f0`` fixes the variable to 0 and ``f1``
    to 1; both are truth tables over the remaining inputs (the variable
    is removed, higher inputs shift down by one position).
    """
    n = _num_inputs(table)
    if not 0 <= variable < n:
        raise SynthesisError(f"variable {variable} out of range for {n} inputs")
    f0: List[int] = []
    f1: List[int] = []
    for index in range(1 << (n - 1)):
        low = index & ((1 << variable) - 1)
        high = index >> variable
        base = low | (high << (variable + 1))
        f0.append(table[base])
        f1.append(table[base | (1 << variable)])
    return tuple(f0), tuple(f1)


def _num_inputs(table: Sequence[int]) -> int:
    size = len(table)
    n = size.bit_length() - 1
    if size != 1 << n or size == 0:
        raise SynthesisError(f"truth table length {size} is not a power of two")
    return n


def is_constant(table: Sequence[int]) -> bool:
    """True if the truth table is a constant function."""
    return len(set(table)) == 1


def synthesize_function(netlist: Netlist, prefix: str, input_nets: Sequence[str],
                        output_net: str, table: Sequence[int]) -> List[Cell]:
    """Map one Boolean function onto the netlist as a LUT/MUX tree.

    Parameters
    ----------
    netlist:
        Target netlist the created cells are added to.
    prefix:
        Unique prefix for created cell and intermediate net names.
    input_nets:
        Ordered input net names (input ``i`` is the i-th address bit of
        the truth table).
    output_net:
        Net to drive with the function output.
    table:
        Truth table with ``2**len(input_nets)`` entries.

    Returns
    -------
    The list of cells created, in creation order.
    """
    n = _num_inputs(table)
    if n != len(input_nets):
        raise SynthesisError(
            f"truth table has {n} inputs but {len(input_nets)} nets were given"
        )
    created: List[Cell] = []
    _synthesize_recursive(netlist, prefix, list(input_nets), output_net,
                          tuple(int(b) & 1 for b in table), created)
    return created


def _synthesize_recursive(netlist: Netlist, prefix: str, input_nets: List[str],
                          output_net: str, table: Tuple[int, ...],
                          created: List[Cell]) -> None:
    n = _num_inputs(table)
    if n <= MAX_LUT_INPUTS:
        if n == 0:
            # Constant function: realise as a 1-input LUT fed by any net is
            # not possible without an input, so use a LUT on a dummy input
            # only if one exists; otherwise this is a degenerate request.
            raise SynthesisError(
                "cannot synthesise a 0-input function; tie the net to a constant cell"
            )
        cell = make_lut(f"{prefix}lut", input_nets, output_net, table)
        netlist.add_cell(cell)
        created.append(cell)
        return

    # Shannon-expand on the highest-numbered input (the F7/F8 select pin).
    variable = n - 1
    select_net = input_nets[variable]
    remaining = input_nets[:variable]
    f0, f1 = cofactors(table, variable)
    net0 = f"{prefix}s0"
    net1 = f"{prefix}s1"

    if is_constant(f0):
        _emit_constant_branch(netlist, f"{prefix}c0_", remaining, net0, f0, created)
    else:
        _synthesize_recursive(netlist, f"{prefix}n0_", list(remaining), net0, f0, created)
    if is_constant(f1):
        _emit_constant_branch(netlist, f"{prefix}c1_", remaining, net1, f1, created)
    else:
        _synthesize_recursive(netlist, f"{prefix}n1_", list(remaining), net1, f1, created)

    mux = make_mux2(f"{prefix}mux", select_net, net0, net1, output_net)
    netlist.add_cell(mux)
    created.append(mux)


def _emit_constant_branch(netlist: Netlist, prefix: str, input_nets: Sequence[str],
                          output_net: str, table: Sequence[int],
                          created: List[Cell]) -> None:
    """Realise a constant cofactor as a 1-input LUT (constant generator)."""
    value = int(table[0]) & 1
    if not input_nets:
        raise SynthesisError("constant branch requires at least one input net")
    cell = make_lut(prefix + "lut", [input_nets[0]], output_net, (value, value))
    netlist.add_cell(cell)
    created.append(cell)


# ---------------------------------------------------------------------------
# Reduction trees
# ---------------------------------------------------------------------------

_REDUCTION_OPS = {
    "and": lambda bits: int(all(bits)),
    "or": lambda bits: int(any(bits)),
    "xor": lambda bits: int(sum(bits) % 2),
}


def synthesize_reduction_tree(netlist: Netlist, prefix: str,
                              input_nets: Sequence[str], output_net: str,
                              operation: str = "and",
                              lut_width: int = MAX_LUT_INPUTS) -> List[Cell]:
    """Build a wide AND/OR/XOR reduction over ``input_nets`` using LUT stages.

    Inputs are grouped ``lut_width`` at a time into LUTs computing the
    partial reduction, and the partial results are reduced again until a
    single net remains, which drives ``output_net``.  This mirrors how a
    mapper implements the trojan trigger comparators (e.g. "all 32
    SubBytes input bits are 1").
    """
    if operation not in _REDUCTION_OPS:
        raise SynthesisError(f"unsupported reduction {operation!r}")
    if not input_nets:
        raise SynthesisError("reduction tree requires at least one input")
    if not 2 <= lut_width <= MAX_LUT_INPUTS:
        raise SynthesisError(
            f"lut_width must be in 2..{MAX_LUT_INPUTS}, got {lut_width}"
        )
    reducer = _REDUCTION_OPS[operation]
    created: List[Cell] = []
    level = 0
    current = list(input_nets)

    while len(current) > 1:
        next_level: List[str] = []
        for group_index in range(0, len(current), lut_width):
            group = current[group_index : group_index + lut_width]
            if len(group) == 1:
                next_level.append(group[0])
                continue
            is_last = len(current) <= lut_width
            out_net = output_net if is_last else (
                f"{prefix}l{level}_g{group_index // lut_width}"
            )
            table = truth_table_from_function(
                lambda idx, width=len(group): reducer(
                    [(idx >> j) & 1 for j in range(width)]
                ),
                len(group),
            )
            cell = make_lut(
                f"{prefix}l{level}_lut{group_index // lut_width}",
                group, out_net, table,
            )
            netlist.add_cell(cell)
            created.append(cell)
            next_level.append(out_net)
        current = next_level
        level += 1

    if not created:
        # Single input net: insert a buffer-like LUT so the output net exists.
        cell = make_lut(f"{prefix}buf", [current[0]], output_net, (0, 1))
        netlist.add_cell(cell)
        created.append(cell)
    return created


def synthesize_xor2(netlist: Netlist, prefix: str, a: str, b: str,
                    output_net: str) -> Cell:
    """Create a 2-input XOR realised as a LUT (as an FPGA mapper would)."""
    cell = make_lut(prefix + "xor", [a, b], output_net, (0, 1, 1, 0))
    netlist.add_cell(cell)
    return cell
