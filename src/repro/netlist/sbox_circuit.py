"""Gate-level (LUT-mapped) AES S-box circuit.

Each of the eight S-box output bits is an 8-input Boolean function of
the input byte.  The synthesiser maps every output bit onto four 6-input
LUTs combined by the slice F7/F8 multiplexers — exactly the structure a
Xilinx mapper produces for an 8-input function on Virtex-5.

The circuit is verified in the test-suite against the behavioural S-box
for all 256 inputs (and by property-based equivalence on random LUT
synthesis), so the timing engine operates on a functionally correct
structural model.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..crypto.sbox import SBOX
from .netlist import Netlist
from .synth import synthesize_function


def sbox_input_net(bit: int) -> str:
    """Name of S-box input net for bit ``bit`` (0 = LSB of the byte)."""
    if not 0 <= bit < 8:
        raise ValueError(f"bit must be in range(8), got {bit}")
    return f"in{bit}"


def sbox_output_net(bit: int) -> str:
    """Name of S-box output net for bit ``bit`` (0 = LSB of the byte)."""
    if not 0 <= bit < 8:
        raise ValueError(f"bit must be in range(8), got {bit}")
    return f"out{bit}"


def build_sbox_netlist(name: str = "aes_sbox") -> Netlist:
    """Construct the LUT-mapped forward S-box netlist.

    Inputs are ``in0..in7`` (LSB first), outputs ``out0..out7``.
    """
    netlist = Netlist(name=name)
    input_nets = [netlist.add_input(sbox_input_net(bit)) for bit in range(8)]
    for bit in range(8):
        netlist.add_output(sbox_output_net(bit))

    for bit in range(8):
        table = tuple((SBOX[value] >> bit) & 1 for value in range(256))
        synthesize_function(
            netlist,
            prefix=f"b{bit}_",
            input_nets=input_nets,
            output_net=sbox_output_net(bit),
            table=table,
        )
    netlist.validate()
    return netlist


def evaluate_sbox_netlist(netlist: Netlist, value: int) -> int:
    """Evaluate the S-box netlist for one input byte; returns the output byte."""
    if not 0 <= value < 256:
        raise ValueError(f"value must be in range(256), got {value}")
    inputs: Dict[str, int] = {
        sbox_input_net(bit): (value >> bit) & 1 for bit in range(8)
    }
    outputs = netlist.evaluate_outputs(inputs)
    result = 0
    for bit in range(8):
        result |= outputs[sbox_output_net(bit)] << bit
    return result


def sbox_netlist_truth_table(netlist: Netlist) -> List[int]:
    """Exhaustive truth table of the S-box netlist (256 output bytes)."""
    return [evaluate_sbox_netlist(netlist, value) for value in range(256)]
