"""Structural netlist container and evaluation.

A :class:`Netlist` is a directed graph of :class:`~repro.netlist.cells.Cell`
instances connected by named nets.  It supports:

* functional evaluation of the combinational portion (used to check the
  generated circuits against the behavioural AES),
* topological ordering (used by the timing engine),
* structural queries (fan-in cone, fan-out, primary inputs/outputs),
* merging of sub-circuits with name prefixes (used to compose the 16
  S-box circuits and the key-addition network into the last-round
  circuit, and to attach trojan circuits without disturbing the host).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .cells import Cell, CellType


class NetlistError(Exception):
    """Raised for structural problems in a netlist."""


@dataclass
class Netlist:
    """A flat structural netlist.

    Attributes
    ----------
    name:
        Human-readable design name.
    inputs:
        Ordered primary input net names.
    outputs:
        Ordered primary output net names.
    cells:
        Mapping from instance name to :class:`Cell`.
    """

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    cells: Dict[str, Cell] = field(default_factory=dict)

    # -- construction ----------------------------------------------------

    def add_input(self, net: str) -> str:
        if net in self.inputs:
            raise NetlistError(f"duplicate primary input {net!r}")
        self.inputs.append(net)
        return net

    def add_output(self, net: str) -> str:
        if net in self.outputs:
            raise NetlistError(f"duplicate primary output {net!r}")
        self.outputs.append(net)
        return net

    def add_cell(self, cell: Cell) -> Cell:
        if cell.name in self.cells:
            raise NetlistError(f"duplicate cell name {cell.name!r}")
        existing_driver = self.driver_of(cell.output)
        if existing_driver is not None:
            raise NetlistError(
                f"net {cell.output!r} already driven by {existing_driver.name!r}"
            )
        if cell.output in self.inputs:
            raise NetlistError(
                f"net {cell.output!r} is a primary input and cannot be driven"
            )
        self.cells[cell.name] = cell
        # Maintain the driver map incrementally: re-deriving it per added
        # cell made composing sub-circuits (merge of the 16 S-boxes)
        # quadratic.  Only the structure-dependent caches are dropped.
        driver_cache = self.__dict__.get("_driver_cache")
        if driver_cache is not None:
            driver_cache[cell.output] = cell
        self._invalidate_structure_caches()
        return cell

    def merge(self, other: "Netlist", prefix: str = "",
              port_map: Optional[Mapping[str, str]] = None) -> Dict[str, str]:
        """Instantiate ``other`` inside this netlist.

        Nets and cells of ``other`` are renamed with ``prefix``; nets
        listed in ``port_map`` (keys are ``other``'s net names) are
        connected to existing nets of ``self`` instead of being renamed.

        Returns the mapping from ``other``'s net names to the names used
        inside ``self``.
        """
        port_map = dict(port_map or {})
        net_map: Dict[str, str] = {}

        def translate(net: str) -> str:
            if net in net_map:
                return net_map[net]
            target = port_map.get(net, prefix + net)
            net_map[net] = target
            return target

        for cell in other.cells.values():
            new_cell = Cell(
                name=prefix + cell.name,
                cell_type=cell.cell_type,
                inputs=tuple(translate(n) for n in cell.inputs),
                output=translate(cell.output),
                truth_table=cell.truth_table,
                init=cell.init,
            )
            self.add_cell(new_cell)
        return net_map

    # -- structural queries ----------------------------------------------

    def _invalidate_structure_caches(self) -> None:
        """Drop the caches a structural edit invalidates.

        The driver map is maintained incrementally by :meth:`add_cell`
        and therefore survives; the fan-out, topological-order and
        compiled-kernel caches are derived from the full structure and
        must be rebuilt.
        """
        self.__dict__.pop("_loads_cache", None)
        self.__dict__.pop("_topo_cache", None)
        self.__dict__.pop("_compiled_cache", None)

    @property
    def _drivers(self) -> Dict[str, Cell]:
        cache = self.__dict__.get("_driver_cache")
        if cache is None:
            cache = {cell.output: cell for cell in self.cells.values()}
            self.__dict__["_driver_cache"] = cache
        return cache

    @property
    def _loads(self) -> Dict[str, List[Cell]]:
        cache = self.__dict__.get("_loads_cache")
        if cache is None:
            cache = defaultdict(list)
            for cell in self.cells.values():
                for net in cell.inputs:
                    cache[net].append(cell)
            self.__dict__["_loads_cache"] = dict(cache)
        return self.__dict__["_loads_cache"]

    def driver_of(self, net: str) -> Optional[Cell]:
        """The cell driving ``net`` or None (primary input / dangling)."""
        return self._drivers.get(net)

    def loads_of(self, net: str) -> List[Cell]:
        """Cells whose inputs include ``net``."""
        return list(self._loads.get(net, []))

    def nets(self) -> Set[str]:
        """All net names referenced by the netlist."""
        result: Set[str] = set(self.inputs) | set(self.outputs)
        for cell in self.cells.values():
            result.add(cell.output)
            result.update(cell.inputs)
        return result

    def register_cells(self) -> List[Cell]:
        """All DFF cells, in name order."""
        return sorted(
            (c for c in self.cells.values() if c.is_sequential),
            key=lambda c: c.name,
        )

    def combinational_cells(self) -> List[Cell]:
        """All combinational (non-DFF, non-constant) cells, in name order."""
        return sorted(
            (c for c in self.cells.values() if c.is_combinational),
            key=lambda c: c.name,
        )

    def lut_equivalent_area(self) -> float:
        """Total area of the netlist in LUT equivalents.

        The paper reports trojan size as a percentage of the AES area;
        this is the quantity those percentages are computed from.
        """
        return sum(cell.lut_equivalents() for cell in self.cells.values())

    def stats(self) -> Dict[str, int]:
        """Cell-count statistics keyed by cell type name."""
        counts: Dict[str, int] = defaultdict(int)
        for cell in self.cells.values():
            counts[cell.cell_type.value] += 1
        counts["nets"] = len(self.nets())
        counts["cells"] = len(self.cells)
        return dict(counts)

    # -- validation and ordering ------------------------------------------

    def validate(self) -> None:
        """Check that the netlist is structurally sound.

        Every cell input must be driven by a primary input, a constant
        or another cell; every primary output must be driven; the
        combinational portion must be acyclic.
        """
        drivers = self._drivers
        known_sources = set(self.inputs) | set(drivers)
        for cell in self.cells.values():
            for net in cell.inputs:
                if net not in known_sources:
                    raise NetlistError(
                        f"cell {cell.name!r} input net {net!r} has no driver"
                    )
        for net in self.outputs:
            if net not in known_sources:
                raise NetlistError(f"primary output {net!r} has no driver")
        # Acyclicity is established by topological_order(); it raises on cycles.
        self.topological_order()

    def topological_order(self) -> List[Cell]:
        """Topological order of combinational cells (Kahn's algorithm).

        DFF outputs and primary inputs are treated as sources; DFF and
        constant cells are excluded from the returned ordering (they
        have no combinational predecessors that matter for evaluation).
        """
        cached = self.__dict__.get("_topo_cache")
        if cached is not None:
            return list(cached)

        drivers = self._drivers
        comb_cells = [c for c in self.cells.values() if c.is_combinational]
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[Cell]] = defaultdict(list)

        for cell in comb_cells:
            count = 0
            for net in cell.inputs:
                driver = drivers.get(net)
                if driver is not None and driver.is_combinational:
                    count += 1
                    dependents[driver.name].append(cell)
            indegree[cell.name] = count

        queue = deque(
            sorted((c for c in comb_cells if indegree[c.name] == 0),
                   key=lambda c: c.name)
        )
        order: List[Cell] = []
        while queue:
            cell = queue.popleft()
            order.append(cell)
            for successor in dependents[cell.name]:
                indegree[successor.name] -= 1
                if indegree[successor.name] == 0:
                    queue.append(successor)
        if len(order) != len(comb_cells):
            raise NetlistError(
                f"combinational cycle detected in netlist {self.name!r}"
            )
        self.__dict__["_topo_cache"] = list(order)
        return order

    # -- compiled kernel ----------------------------------------------------

    def compiled(self) -> "CompiledNetlist":
        """The (cached) compiled form of this netlist.

        Lowering happens once per structure; any :meth:`add_cell` drops
        the cache together with the topological order.  The compiled
        kernel evaluates batches of stimulus vectors at array speed and
        is bit-identical to :meth:`evaluate` — see
        :mod:`repro.netlist.compiled`.
        """
        cache = self.__dict__.get("_compiled_cache")
        if cache is None:
            from .compiled import CompiledNetlist  # deferred: avoids cycle
            cache = CompiledNetlist.from_netlist(self)
            self.__dict__["_compiled_cache"] = cache
        return cache

    # -- evaluation --------------------------------------------------------

    def evaluate(self, input_values: Mapping[str, int],
                 register_values: Optional[Mapping[str, int]] = None
                 ) -> Dict[str, int]:
        """Evaluate every net of the combinational portion.

        Parameters
        ----------
        input_values:
            Values of the primary input nets.
        register_values:
            Optional values of the DFF *output* nets (``Q`` pins).  When
            omitted, DFF outputs take their ``init`` values.

        Returns
        -------
        dict mapping every net name to 0/1.
        """
        values: Dict[str, int] = {}
        for net in self.inputs:
            if net not in input_values:
                raise NetlistError(f"missing value for primary input {net!r}")
            values[net] = int(input_values[net]) & 1
        for net, value in input_values.items():
            values[net] = int(value) & 1

        for cell in self.cells.values():
            if cell.cell_type == CellType.CONST0:
                values[cell.output] = 0
            elif cell.cell_type == CellType.CONST1:
                values[cell.output] = 1
            elif cell.is_sequential:
                if register_values is not None and cell.output in register_values:
                    values[cell.output] = int(register_values[cell.output]) & 1
                else:
                    values[cell.output] = cell.init

        for cell in self.topological_order():
            try:
                operands = [values[n] for n in cell.inputs]
            except KeyError as exc:
                raise NetlistError(
                    f"cell {cell.name!r} input {exc.args[0]!r} is undriven"
                ) from exc
            values[cell.output] = cell.evaluate(operands)
        return values

    def evaluate_outputs(self, input_values: Mapping[str, int],
                         register_values: Optional[Mapping[str, int]] = None
                         ) -> Dict[str, int]:
        """Evaluate and return only the primary output values."""
        values = self.evaluate(input_values, register_values)
        return {net: values[net] for net in self.outputs}

    def next_register_values(self, input_values: Mapping[str, int],
                             register_values: Optional[Mapping[str, int]] = None
                             ) -> Dict[str, int]:
        """Values latched by every DFF on the next clock edge."""
        values = self.evaluate(input_values, register_values)
        return {cell.output: values[cell.inputs[0]]
                for cell in self.register_cells()}

    # -- cones --------------------------------------------------------------

    def fanin_cone(self, net: str) -> Set[str]:
        """Names of all cells in the transitive fan-in of ``net``."""
        drivers = self._drivers
        seen: Set[str] = set()
        stack = [net]
        while stack:
            current = stack.pop()
            driver = drivers.get(current)
            if driver is None or driver.name in seen:
                continue
            seen.add(driver.name)
            if driver.is_combinational:
                stack.extend(driver.inputs)
        return seen

    def fanout_cone(self, net: str) -> Set[str]:
        """Names of all cells in the transitive fan-out of ``net``."""
        seen: Set[str] = set()
        stack = [net]
        while stack:
            current = stack.pop()
            for load in self._loads.get(current, []):
                if load.name in seen:
                    continue
                seen.add(load.name)
                if load.is_combinational:
                    stack.append(load.output)
        return seen
