"""Structural netlist substrate: cells, netlists, synthesis and timing.

The netlist layer is the "silicon" of this reproduction: the AES last
round and the trojan triggers are built as LUT-mapped netlists, placed
onto an FPGA fabric model, annotated with process-variation and
power-grid delays, and analysed by the timing engine that feeds the
clock-glitch fault model.
"""

from .aes_round_circuit import (
    AESLastRoundCircuit,
    byte_bit_to_paper_bit,
    paper_bit_to_byte_bit,
)
from .cells import (
    Cell,
    CellType,
    DEFAULT_CELL_DELAY_PS,
    MAX_LUT_INPUTS,
    make_and,
    make_dff,
    make_lut,
    make_mux2,
    make_xor,
)
from .bitslice import BitslicedNetlist, pack_bits, unpack_words
from .compiled import CompiledNetlist, CompiledTimingEngine
from .netlist import Netlist, NetlistError
from .sbox_circuit import build_sbox_netlist, evaluate_sbox_netlist
from .synth import (
    SynthesisError,
    cofactors,
    synthesize_function,
    synthesize_reduction_tree,
    truth_table_from_function,
)
from .timing import (
    DEFAULT_NET_DELAY_PS,
    DelayAnnotation,
    TimingEngine,
    TwoVectorResult,
)

__all__ = [
    "AESLastRoundCircuit",
    "byte_bit_to_paper_bit",
    "paper_bit_to_byte_bit",
    "Cell",
    "CellType",
    "DEFAULT_CELL_DELAY_PS",
    "MAX_LUT_INPUTS",
    "make_and",
    "make_dff",
    "make_lut",
    "make_mux2",
    "make_xor",
    "BitslicedNetlist",
    "pack_bits",
    "unpack_words",
    "CompiledNetlist",
    "CompiledTimingEngine",
    "Netlist",
    "NetlistError",
    "build_sbox_netlist",
    "evaluate_sbox_netlist",
    "SynthesisError",
    "cofactors",
    "synthesize_function",
    "synthesize_reduction_tree",
    "truth_table_from_function",
    "DEFAULT_NET_DELAY_PS",
    "DelayAnnotation",
    "TimingEngine",
    "TwoVectorResult",
]
