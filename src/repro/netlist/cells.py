"""Primitive cells of the structural netlists.

The FPGA mapping in this reproduction uses the same small set of
primitives a Xilinx slice offers:

* ``LUT``     — a k-input look-up table (k <= 6) holding an arbitrary
                truth table,
* ``MUX2``    — the dedicated F7/F8 2:1 multiplexers that combine LUT
                outputs into wider functions,
* ``XOR2``/``AND2``/``OR2``/``INV``/``BUF`` — convenience primitives
                (mapped onto LUTs by real tools, kept explicit here for
                readability of generated circuits),
* ``DFF``     — the slice flip-flop, boundary of the timing paths,
* ``CONST0``/``CONST1`` — tie-off cells.

Every combinational cell knows how to evaluate itself; the
:class:`~repro.netlist.netlist.Netlist` uses this for functional
verification (equivalence against the behavioural AES) and for the
two-vector timing simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple


class CellType(str, Enum):
    """Enumeration of supported primitive cell types."""

    LUT = "LUT"
    MUX2 = "MUX2"
    XOR2 = "XOR2"
    AND2 = "AND2"
    OR2 = "OR2"
    INV = "INV"
    BUF = "BUF"
    DFF = "DFF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"


#: Intrinsic propagation delay of each cell type, in picoseconds.  These
#: are representative 65 nm FPGA values (a Virtex-5 LUT6 is ~90 ps); the
#: absolute scale only matters relative to the 35 ps glitch step and the
#: ~10 ns nominal clock period used by the experiments.
DEFAULT_CELL_DELAY_PS: Dict[CellType, float] = {
    CellType.LUT: 90.0,
    CellType.MUX2: 40.0,
    CellType.XOR2: 90.0,
    CellType.AND2: 90.0,
    CellType.OR2: 90.0,
    CellType.INV: 45.0,
    CellType.BUF: 30.0,
    CellType.DFF: 0.0,
    CellType.CONST0: 0.0,
    CellType.CONST1: 0.0,
}

#: Maximum number of LUT inputs (Virtex-5 uses 6-input LUTs).
MAX_LUT_INPUTS = 6


@dataclass
class Cell:
    """One instantiated primitive.

    Parameters
    ----------
    name:
        Unique instance name within the netlist.
    cell_type:
        One of :class:`CellType`.
    inputs:
        Names of the nets driving the cell inputs.  For ``MUX2`` the
        order is ``(select, in0, in1)``; for ``DFF`` it is ``(d,)``.
    output:
        Name of the net driven by the cell.
    truth_table:
        For ``LUT`` cells only: a tuple of ``2**len(inputs)`` bits where
        index ``i`` encodes the output for the input combination whose
        bit ``j`` is ``(i >> j) & 1`` (input 0 is the least-significant
        address bit).
    init:
        For ``DFF`` cells: the power-up value of the register.
    """

    name: str
    cell_type: CellType
    inputs: Tuple[str, ...]
    output: str
    truth_table: Optional[Tuple[int, ...]] = None
    init: int = 0

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        self._validate()

    def _validate(self) -> None:
        ct = self.cell_type
        n = len(self.inputs)
        if ct == CellType.LUT:
            if not 1 <= n <= MAX_LUT_INPUTS:
                raise ValueError(
                    f"LUT {self.name!r} must have 1..{MAX_LUT_INPUTS} inputs, got {n}"
                )
            if self.truth_table is None:
                raise ValueError(f"LUT {self.name!r} requires a truth table")
            expected = 1 << n
            if len(self.truth_table) != expected:
                raise ValueError(
                    f"LUT {self.name!r} truth table must have {expected} entries, "
                    f"got {len(self.truth_table)}"
                )
            if any(bit not in (0, 1) for bit in self.truth_table):
                raise ValueError(f"LUT {self.name!r} truth table entries must be 0/1")
        elif ct == CellType.MUX2:
            if n != 3:
                raise ValueError(f"MUX2 {self.name!r} requires 3 inputs (sel, a, b)")
        elif ct in (CellType.XOR2, CellType.AND2, CellType.OR2):
            if n != 2:
                raise ValueError(f"{ct.value} {self.name!r} requires 2 inputs")
        elif ct in (CellType.INV, CellType.BUF, CellType.DFF):
            if n != 1:
                raise ValueError(f"{ct.value} {self.name!r} requires 1 input")
        elif ct in (CellType.CONST0, CellType.CONST1):
            if n != 0:
                raise ValueError(f"{ct.value} {self.name!r} takes no inputs")
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown cell type {ct}")

    @property
    def is_sequential(self) -> bool:
        return self.cell_type == CellType.DFF

    @property
    def is_constant(self) -> bool:
        return self.cell_type in (CellType.CONST0, CellType.CONST1)

    @property
    def is_combinational(self) -> bool:
        return not self.is_sequential and not self.is_constant

    def evaluate(self, input_values: Sequence[int]) -> int:
        """Evaluate the cell output for the given ordered input values.

        ``DFF`` cells are transparent here (they return their ``d``
        input); registers are handled by the netlist's cycle semantics.
        """
        values = tuple(int(v) & 1 for v in input_values)
        if len(values) != len(self.inputs):
            raise ValueError(
                f"cell {self.name!r} expects {len(self.inputs)} inputs, "
                f"got {len(values)}"
            )
        ct = self.cell_type
        if ct == CellType.LUT:
            index = 0
            for position, bit in enumerate(values):
                index |= bit << position
            assert self.truth_table is not None
            return self.truth_table[index]
        if ct == CellType.MUX2:
            select, in0, in1 = values
            return in1 if select else in0
        if ct == CellType.XOR2:
            return values[0] ^ values[1]
        if ct == CellType.AND2:
            return values[0] & values[1]
        if ct == CellType.OR2:
            return values[0] | values[1]
        if ct == CellType.INV:
            return values[0] ^ 1
        if ct in (CellType.BUF, CellType.DFF):
            return values[0]
        if ct == CellType.CONST0:
            return 0
        if ct == CellType.CONST1:
            return 1
        raise AssertionError(f"unhandled cell type {ct}")  # pragma: no cover

    def intrinsic_delay_ps(self) -> float:
        """Intrinsic (un-annotated) propagation delay of this cell."""
        return DEFAULT_CELL_DELAY_PS[self.cell_type]

    def lut_equivalents(self) -> float:
        """Approximate resource cost of the cell in 6-input LUTs.

        Used by the area accounting that expresses trojan size as a
        percentage of the AES design, matching the paper's
        slice-utilisation figures.
        """
        if self.cell_type == CellType.LUT:
            return 1.0
        if self.cell_type in (CellType.XOR2, CellType.AND2, CellType.OR2):
            return 1.0
        if self.cell_type in (CellType.INV, CellType.BUF):
            return 0.5
        if self.cell_type == CellType.MUX2:
            return 0.0  # dedicated F7/F8 mux, free in a slice
        if self.cell_type == CellType.DFF:
            return 0.0  # flip-flops pair with LUTs inside a slice
        return 0.0


def make_lut(name: str, inputs: Sequence[str], output: str,
             truth_table: Sequence[int]) -> Cell:
    """Convenience constructor for a LUT cell."""
    return Cell(
        name=name,
        cell_type=CellType.LUT,
        inputs=tuple(inputs),
        output=output,
        truth_table=tuple(int(b) for b in truth_table),
    )


def make_xor(name: str, a: str, b: str, output: str) -> Cell:
    """Convenience constructor for a 2-input XOR cell."""
    return Cell(name=name, cell_type=CellType.XOR2, inputs=(a, b), output=output)


def make_and(name: str, a: str, b: str, output: str) -> Cell:
    """Convenience constructor for a 2-input AND cell."""
    return Cell(name=name, cell_type=CellType.AND2, inputs=(a, b), output=output)


def make_mux2(name: str, select: str, in0: str, in1: str, output: str) -> Cell:
    """Convenience constructor for a 2:1 MUX cell (F7/F8 style)."""
    return Cell(
        name=name, cell_type=CellType.MUX2, inputs=(select, in0, in1), output=output
    )


def make_dff(name: str, d: str, q: str, init: int = 0) -> Cell:
    """Convenience constructor for a D flip-flop."""
    return Cell(name=name, cell_type=CellType.DFF, inputs=(d,), output=q, init=init)
