"""Fault-tolerant supervised execution of campaign grid cells.

:class:`CampaignSupervisor` replaces the engine's former bare
``ProcessPoolExecutor.map``: instead of one opaque ``map`` whose first
crashed worker raises ``BrokenProcessPool`` and discards every other
chunk's in-flight work, the supervisor owns a small fleet of directly
managed ``multiprocessing.Process`` workers and feeds them **one cell at
a time** over per-worker pipes:

* **chunk affinity, per-cell dispatch** — cells are still grouped by
  acquisition key (so a worker's caches are reused across the metrics of
  one (die count, variant) point), but each worker receives its chunk
  cell by cell.  A crash or timeout therefore identifies the offending
  cell *exactly* — the degenerate, precise limit of bisecting a failed
  chunk — and only costs that one attempt; the chunk's remaining cells
  go back on the queue untouched.
* **bounded retries with backoff** — a failed attempt (worker death,
  raised exception, or per-cell timeout) is retried up to
  ``spec.max_retries`` times with exponential backoff plus deterministic
  jitter before the cell is quarantined.
* **poison-cell quarantine** — a cell that fails every attempt becomes
  an explicit ``failed`` :class:`~repro.campaigns.engine.CampaignCellResult`
  row (recorded to the store, carried through save/merge/CSV) instead of
  aborting the campaign: the grid completes degraded, and the resume
  path treats failed cells as pending so a rerun retries only them.
* **per-cell timeout** — ``spec.cell_timeout_s`` bounds one attempt; a
  hung worker is SIGKILLed (workers ignore SIGINT/SIGTERM, so only an
  unignorable signal reliably ends a deadlocked kernel call) and the
  attempt enters the normal retry path.
* **graceful drain** — SIGINT/SIGTERM (or a scripted
  :class:`~repro.testing.chaos.FaultPlan` ``interrupt``) stops feeding
  new cells, waits for in-flight cells to finish and record their
  completion in the store, then raises ``KeyboardInterrupt`` — the store
  is left resumable with every finished cell manifest-complete.

Worker liveness is tracked through process **sentinels** passed to
``multiprocessing.connection.wait`` alongside the result pipes: under
the ``fork`` start method sibling workers inherit each other's pipe
ends, so EOF is not a reliable death signal, but a sentinel fires the
moment the process exits no matter how it died.  Results travel over
per-worker pipes rather than one shared queue because a queue's feeder
thread can leave a partial multi-part write when its process is killed
mid-``put``; ``Connection.send`` completes synchronously before the
scripted chaos ``os._exit`` can run.
"""

from __future__ import annotations

import heapq
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from ..store.artifact_store import ArtifactStore
from ..store.retry import backoff_delay_s

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import CampaignCellResult, CampaignEngine
    from .spec import GridCell
    from ..testing.chaos import FaultPlan


@dataclass
class SupervisorPolicy:
    """Fault-tolerance knobs of one supervised run.

    Built from the campaign spec by default
    (:meth:`from_spec`); tests override individual knobs directly.
    """

    workers: int = 2
    #: Retries *after* the first attempt; a cell gets
    #: ``max_retries + 1`` attempts before it is quarantined as failed.
    max_retries: int = 2
    #: Wall-clock bound of one attempt; ``None`` disables the timeout.
    cell_timeout_s: Optional[float] = None
    #: Base of the exponential retry backoff (attempt ``n`` waits
    #: ``retry_backoff_s * 2**(n-1)``, jittered deterministically).
    retry_backoff_s: float = 0.5
    #: Jitter / backoff determinism seed (the spec seed by default).
    seed: int = 0
    #: Main-loop wake-up period; bounds timeout detection latency.
    poll_interval_s: float = 0.05

    @classmethod
    def from_spec(cls, spec: Any) -> "SupervisorPolicy":
        return cls(
            workers=spec.workers,
            max_retries=spec.max_retries,
            cell_timeout_s=spec.cell_timeout_s,
            retry_backoff_s=spec.retry_backoff_s,
            seed=spec.seed,
        )

    def backoff_s(self, cell_index: int, attempt: int) -> float:
        """Deterministic jittered exponential backoff after ``attempt``.

        Delegates to the repository's one backoff formula
        (:func:`repro.store.retry.backoff_delay_s`) — the token encodes
        the spec seed and the cell, so the schedule is reproducible
        run-to-run and bit-identical to the pre-refactor values.
        """
        return backoff_delay_s(self.retry_backoff_s, attempt,
                               token=f"{self.seed}:{cell_index}")


@dataclass
class _Worker:
    """Parent-side handle of one supervised worker process."""

    process: Any
    task_conn: Any
    result_conn: Any
    #: Remaining cells of the chunk this worker is working through.
    chunk: Deque[int] = field(default_factory=deque)
    #: The (index, attempt) currently executing, if any.
    current: Optional[Tuple[int, int]] = None
    started_at: float = 0.0


def _ignore_interrupts() -> None:
    """Make a worker immune to ^C / SIGTERM: the *supervisor* decides
    when work stops (drain), and a half-executed cell must never leave a
    torn completion record.  Hung workers are ended with SIGKILL."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)


def _worker_main(payload: Tuple[Any, ...], task_conn: Any,
                 result_conn: Any) -> None:
    """Worker entry point: rebuild the engine, run cells on demand.

    Protocol: the parent sends ``("cell", index, attempt)`` messages and
    finally ``("bye",)``; the worker answers each cell with ``("done",
    index, attempt, CampaignCellResult)`` or ``("error", index, attempt,
    message)``.  Completion records are written by the worker itself
    (store writes are atomic and content-addressed, so a concurrent
    duplicate write is byte-identical), which keeps every finished cell
    resumable even if the parent dies right after.
    """
    from .engine import CampaignEngine
    from .spec import CampaignSpec

    _ignore_interrupts()
    (spec_dict, artifact_dir, device, golden, store_config, golden_sig,
     active, fault_plan) = payload
    engine = CampaignEngine(CampaignSpec.from_dict(spec_dict),
                            device=device, golden=golden, store=store_config)
    engine._golden_signature = golden_sig
    if fault_plan is not None and type(engine.store) is ArtifactStore:
        from ..testing.chaos import ChaosStore

        # Torn-write chaos targets the plain local store; tiered/remote
        # stores get their faults injected at the transport layer
        # (FlakyTransport) instead.
        engine.store = ChaosStore(engine.store.root, fault_plan)
    if artifact_dir is not None:
        engine._artifact_dir = Path(artifact_dir)
    if active is not None:
        engine._active_indices = frozenset(active)
    if engine.store is not None and hasattr(engine.store, "acquire_lease"):
        # Register this worker's writer lease up front so concurrent
        # maintenance treats its in-flight writes as off-limits for the
        # whole worker lifetime, not just between put_* calls.
        engine.store.acquire_lease(owner=f"worker:{engine.spec.name}")
    grid = engine.spec.grid()
    try:
        while True:
            message = task_conn.recv()
            if message[0] != "cell":
                break
            _, index, attempt = message
            if fault_plan is not None:
                if hasattr(engine.store, "arm"):
                    engine.store.arm(index, attempt)
                injection = fault_plan.worker_fault(index, attempt)
                if injection is not None:
                    # Crash faults never return; hang faults sleep into
                    # the supervisor's timeout kill.
                    fault_plan.execute_worker_fault(injection)
            try:
                cell_result = engine.run_cell(grid[index])
                cell_result.attempts = attempt
                engine.record_cell_result(grid[index], cell_result)
            except Exception as error:
                result_conn.send(("error", index, attempt,
                                  f"{type(error).__name__}: {error}"))
            else:
                result_conn.send(("done", index, attempt, cell_result))
    finally:
        if (engine.store is not None
                and hasattr(engine.store, "release_lease")):
            engine.store.release_lease()
    result_conn.send(("bye",))


class CampaignSupervisor:
    """Supervises a fleet of workers through one campaign's pending cells.

    Returns ``{cell_index: CampaignCellResult}`` covering *every* given
    cell — successes and explicit ``failed`` quarantine rows alike.
    """

    def __init__(self, engine: "CampaignEngine",
                 policy: Optional[SupervisorPolicy] = None,
                 fault_plan: Optional["FaultPlan"] = None):
        self.engine = engine
        self.policy = policy or SupervisorPolicy.from_spec(engine.spec)
        self.fault_plan = fault_plan
        self._grid = {cell.index: cell for cell in engine.spec.grid()}
        self._mp = get_context()
        # Run state (reset per run()).
        self._results: Dict[int, "CampaignCellResult"] = {}
        self._attempts: Dict[int, int] = {}
        self._failures: Dict[int, List[str]] = {}
        self._chunk_queue: Deque[List[int]] = deque()
        self._retry_heap: List[Tuple[float, int]] = []
        self._workers: List[_Worker] = []
        self._draining = False
        self._drain_reason = ""

    # -- worker lifecycle ---------------------------------------------------------

    def _worker_payload(self) -> Tuple[Any, ...]:
        from .engine import store_spawn_config

        engine = self.engine
        return (
            engine.spec.to_dict(),
            str(engine._artifact_dir) if engine._artifact_dir else None,
            engine.device,
            engine._golden,
            store_spawn_config(engine.store),
            engine._golden_signature,
            (sorted(engine._active_indices)
             if engine._active_indices is not None else None),
            self.fault_plan,
        )

    def _spawn_worker(self) -> _Worker:
        task_recv, task_send = self._mp.Pipe(duplex=False)
        result_recv, result_send = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_worker_main,
            args=(self._worker_payload(), task_recv, result_send),
            daemon=True,
        )
        process.start()
        # The child inherited its ends across fork; close ours so fd
        # counts stay bounded across respawns.
        task_recv.close()
        result_send.close()
        worker = _Worker(process=process, task_conn=task_send,
                         result_conn=result_recv)
        self._workers.append(worker)
        return worker

    def _dismiss_worker(self, worker: _Worker, kill: bool = False) -> None:
        if kill and worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():  # pragma: no cover - defensive
            worker.process.kill()
            worker.process.join(timeout=5.0)
        for conn in (worker.task_conn, worker.result_conn):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if worker in self._workers:
            self._workers.remove(worker)

    # -- bookkeeping --------------------------------------------------------------

    def _pending_cell_count(self) -> int:
        queued = sum(len(chunk) for chunk in self._chunk_queue)
        queued += len(self._retry_heap)
        queued += sum(len(worker.chunk) for worker in self._workers)
        queued += sum(1 for worker in self._workers if worker.current)
        return queued

    def _begin_drain(self, reason: str) -> None:
        if not self._draining:
            self._draining = True
            self._drain_reason = reason
        # Queued work is abandoned (it was never started — the resume
        # path picks it up); in-flight cells are waited for.
        self._chunk_queue.clear()
        self._retry_heap.clear()
        for worker in self._workers:
            worker.chunk.clear()

    def _handle_failure(self, index: int, attempt: int,
                        message: str) -> None:
        """Route one failed attempt: retry with backoff, or quarantine."""
        self._failures.setdefault(index, []).append(
            f"attempt {attempt}: {message}")
        if attempt >= self.policy.max_retries + 1:
            from .engine import CampaignCellResult

            cell = self._grid[index]
            result = CampaignCellResult.failed(
                cell, error=" | ".join(self._failures[index]),
                attempts=attempt,
            )
            # Recorded to the store too: a merged/saved result carries
            # the explicit failed row, while the resume path treats it
            # as pending (load_cell_result skips non-ok records).
            self.engine.record_cell_result(cell, result)
            self._results[index] = result
        elif not self._draining:
            due = time.monotonic() + self.policy.backoff_s(index, attempt)
            heapq.heappush(self._retry_heap, (due, index))
        # While draining, a non-final failure is simply left unrecorded:
        # the cell stays pending for the resuming run.

    def _dispatch(self, worker: _Worker) -> bool:
        """Feed one cell to an idle worker. True if something was sent."""
        if self._draining or worker.current is not None:
            return False
        index: Optional[int] = None
        if worker.chunk:
            index = worker.chunk.popleft()
        elif self._retry_heap and self._retry_heap[0][0] <= time.monotonic():
            _, index = heapq.heappop(self._retry_heap)
        elif self._chunk_queue:
            worker.chunk = deque(self._chunk_queue.popleft())
            index = worker.chunk.popleft()
        if index is None:
            return False
        attempt = self._attempts.get(index, 0) + 1
        self._attempts[index] = attempt
        if (self.fault_plan is not None
                and self.fault_plan.interrupts_at(index, attempt)):
            # Scripted operator ^C: the drain begins the moment this
            # coordinate starts executing.  The cell itself is dispatched
            # first — a real interrupt lands while cells are in flight.
            worker.task_conn.send(("cell", index, attempt))
            worker.current = (index, attempt)
            worker.started_at = time.monotonic()
            self._begin_drain("scripted interrupt (chaos fault plan)")
            return True
        worker.task_conn.send(("cell", index, attempt))
        worker.current = (index, attempt)
        worker.started_at = time.monotonic()
        return True

    def _drain_messages(self, worker: _Worker) -> None:
        """Process every message currently readable from one worker."""
        while True:
            try:
                if not worker.result_conn.poll():
                    return
                message = worker.result_conn.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "done":
                _, index, attempt, cell_result = message
                self._results[index] = cell_result
                if worker.current == (index, attempt):
                    worker.current = None
            elif kind == "error":
                _, index, attempt, error_message = message
                if worker.current == (index, attempt):
                    worker.current = None
                self._handle_failure(index, attempt, error_message)
            elif kind == "bye":
                return

    def _handle_worker_death(self, worker: _Worker) -> None:
        """A worker process exited: salvage its pipe, fail its cell."""
        self._drain_messages(worker)
        exitcode = worker.process.exitcode
        current = worker.current
        remaining = list(worker.chunk)
        self._dismiss_worker(worker)
        if current is not None:
            index, attempt = current
            self._handle_failure(
                index, attempt,
                f"worker process died (exit code {exitcode})")
        if remaining and not self._draining:
            self._chunk_queue.appendleft(remaining)

    def _check_timeouts(self) -> None:
        timeout = self.policy.cell_timeout_s
        if timeout is None:
            return
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.current is None:
                continue
            if now - worker.started_at < timeout:
                continue
            index, attempt = worker.current
            remaining = list(worker.chunk)
            # SIGKILL: the worker ignores SIGINT/SIGTERM by design, and
            # a hung native call would not honour them anyway.
            self._dismiss_worker(worker, kill=True)
            self._handle_failure(
                index, attempt,
                f"cell attempt exceeded cell_timeout_s={timeout}")
            if remaining and not self._draining:
                self._chunk_queue.appendleft(remaining)

    # -- main loop ----------------------------------------------------------------

    def run(self, cells: List["GridCell"]
            ) -> Dict[int, "CampaignCellResult"]:
        """Run ``cells`` to completion (or graceful drain).

        Cells are chunked by acquisition key — exactly the old pool's
        chunking, for the same cache-affinity reason — then supervised
        per cell.  Raises ``KeyboardInterrupt`` after a graceful drain;
        any other return covers every requested cell.
        """
        if not cells:
            return {}
        chunks: Dict[Tuple[int, str], List[int]] = {}
        for cell in cells:
            chunks.setdefault(cell.acquisition_key, []).append(cell.index)
        self._results = {}
        self._attempts = {}
        self._failures = {}
        self._chunk_queue = deque(chunks.values())
        self._retry_heap = []
        self._workers = []
        self._draining = False
        self._drain_reason = ""
        target = {cell.index for cell in cells}

        previous_handlers: Dict[int, Any] = {}

        def _drain_signal_handler(signum, frame):  # pragma: no cover - signal
            self._begin_drain(f"received signal {signum}")

        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous_handlers[signum] = signal.signal(
                    signum, _drain_signal_handler)
        try:
            worker_count = min(self.policy.workers, len(chunks))
            for _ in range(max(1, worker_count)):
                self._spawn_worker()
            while True:
                for worker in self._workers:
                    self._dispatch(worker)
                if target <= set(self._results):
                    break
                if (self._draining
                        and all(worker.current is None
                                for worker in self._workers)):
                    break
                if not self._workers:
                    if self._draining or not self._pending_cell_count():
                        break
                    self._spawn_worker()
                    continue
                waitables = [worker.result_conn for worker in self._workers]
                waitables += [worker.process.sentinel
                              for worker in self._workers]
                connection_wait(waitables,
                                timeout=self.policy.poll_interval_s)
                for worker in list(self._workers):
                    self._drain_messages(worker)
                for worker in list(self._workers):
                    if not worker.process.is_alive():
                        self._handle_worker_death(worker)
                self._check_timeouts()
                # Workers died with work left and none respawned above:
                # keep the fleet at least one strong while work remains.
                if (not self._draining and self._pending_cell_count()
                        and len(self._workers) < max(
                            1, min(self.policy.workers,
                                   self._pending_cell_count()))):
                    self._spawn_worker()
        finally:
            for worker in list(self._workers):
                if worker.process.is_alive() and worker.current is None:
                    try:
                        worker.task_conn.send(("bye",))
                    except (OSError, BrokenPipeError):
                        pass
                    self._dismiss_worker(worker)
                else:
                    self._dismiss_worker(worker, kill=True)
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
        if self._draining and not target <= set(self._results):
            raise KeyboardInterrupt(
                f"campaign drained after {self._drain_reason}: "
                f"{len(self._results)}/{len(target)} in-flight cells "
                f"completed and recorded; the store is resumable"
            )
        return self._results


def run_cells_serial(engine: "CampaignEngine", cells: List["GridCell"],
                     policy: Optional[SupervisorPolicy] = None
                     ) -> Dict[int, "CampaignCellResult"]:
    """The supervisor's retry/quarantine semantics, in-process.

    Single-worker runs share the exact failure contract of supervised
    ones — bounded retries with backoff, then an explicit ``failed`` row
    — minus what needs a separate process (crash containment, timeout
    kills).  ``KeyboardInterrupt`` propagates: every previously finished
    cell is already recorded, so the run is resumable.
    """
    from .engine import CampaignCellResult

    policy = policy or SupervisorPolicy.from_spec(engine.spec)
    results: Dict[int, CampaignCellResult] = {}
    for cell in cells:
        failures: List[str] = []
        for attempt in range(1, policy.max_retries + 2):
            try:
                cell_result = engine.run_cell(cell)
            except Exception as error:
                failures.append(
                    f"attempt {attempt}: {type(error).__name__}: {error}")
                if attempt <= policy.max_retries:
                    backoff = policy.backoff_s(cell.index, attempt)
                    if backoff > 0:
                        time.sleep(backoff)
                continue
            cell_result.attempts = attempt
            engine.record_cell_result(cell, cell_result)
            results[cell.index] = cell_result
            break
        else:
            cell_result = CampaignCellResult.failed(
                cell, error=" | ".join(failures),
                attempts=policy.max_retries + 1,
            )
            engine.record_cell_result(cell, cell_result)
            results[cell.index] = cell_result
    return results
