"""Declarative campaign specifications.

A *campaign* is a grid of detection scenarios swept in one go:

    (trojan names) x (die-population sizes) x (acquisition variants)
                   x (detection metrics)

:class:`CampaignSpec` describes the grid declaratively (and round-trips
through JSON so campaigns can be stored next to their results);
:func:`CampaignSpec.grid` expands it into :class:`GridCell` work items
the :class:`~repro.campaigns.engine.CampaignEngine` executes.  One cell
is one full population study — all trojans of the spec measured over one
die population under one acquisition configuration, scored with one
metric.  EM metrics run the Sec. V inter-die trace study; ``delay_*``
metrics run the Sec. III clock-glitch delay study across the same die
population through the compiled timing kernel (``num_pk_pairs`` (P, K)
stimuli, ``delay_repetitions`` repetitions).

Acquisition variants are expressed as dotted-path overrides applied on
top of the default :class:`~repro.measurement.em_simulator.EMAcquisitionConfig`,
e.g. ``{"noise.sigma_single_shot": 400.0, "oscilloscope.num_averages":
250}`` — every numeric field of the acquisition config (including the
nested probe/amplifier/oscilloscope/noise models) can be swept without
touching code.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..backend import known_backend_names
from ..measurement.em_simulator import EMAcquisitionConfig
from ..stimulus import DEFAULT_KEY, DEFAULT_PLAINTEXT, campaign_stimuli
from ..trojan.library import TROJAN_SPECS

PathLike = Union[str, Path]

#: EM trace metrics (resolved by the engine's metric registry).
KNOWN_EM_METRICS = ("local_maxima_sum", "l1", "max_difference")

#: Delay-study metrics: a grid cell carrying one of these runs the
#: Sec. III clock-glitch campaign (through the compiled timing kernel)
#: across the die population instead of an EM acquisition.
KNOWN_DELAY_METRICS = ("delay_max_difference", "delay_mean_pair_max")

#: Fault-attack metrics: a grid cell carrying one of these runs a
#: glitch-grid fault-injection sweep (:mod:`repro.attacks`) across the
#: die population and scores each device by the fraction of
#: (grid point, stimulus) captures with at least one faulted byte.
KNOWN_FAULT_METRICS = ("fault_coverage",)

#: All metric names accepted by ``CampaignSpec.metrics``.
KNOWN_METRICS = KNOWN_EM_METRICS + KNOWN_DELAY_METRICS + KNOWN_FAULT_METRICS



def apply_em_overrides(config: EMAcquisitionConfig,
                       overrides: Mapping[str, Any]) -> EMAcquisitionConfig:
    """Return a copy of ``config`` with dotted-path overrides applied.

    ``"clock_frequency_mhz"`` targets the top-level config;
    ``"noise.sigma_single_shot"`` targets a field of a nested dataclass.
    Unknown paths raise ``ValueError`` so a typo in a spec fails loudly
    instead of silently sweeping nothing.
    """
    grouped: Dict[str, Dict[str, Any]] = {}
    flat: Dict[str, Any] = {}
    for path, value in overrides.items():
        head, _, rest = str(path).partition(".")
        if rest:
            grouped.setdefault(head, {})[rest] = value
        else:
            flat[head] = value
    field_names = {f.name for f in dataclasses.fields(config)}
    for name in list(flat) + list(grouped):
        if name not in field_names:
            raise ValueError(
                f"unknown acquisition config field {name!r}; available: "
                + ", ".join(sorted(field_names))
            )
    for head, nested_overrides in grouped.items():
        nested = getattr(config, head)
        if not dataclasses.is_dataclass(nested):
            raise ValueError(
                f"{head!r} is not a nested config, cannot apply "
                f"{sorted(nested_overrides)}"
            )
        nested_fields = {f.name for f in dataclasses.fields(nested)}
        unknown = set(nested_overrides) - nested_fields
        if unknown:
            raise ValueError(
                f"unknown field(s) {sorted(unknown)} in {head!r}; available: "
                + ", ".join(sorted(nested_fields))
            )
        flat[head] = dataclasses.replace(nested, **nested_overrides)
    return dataclasses.replace(config, **flat)


@dataclass(frozen=True)
class AcquisitionVariant:
    """One named point of the acquisition-configuration grid."""

    name: str
    em_overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variant name must be non-empty")
        object.__setattr__(self, "em_overrides",
                           tuple((str(k), v) for k, v in
                                 dict(self.em_overrides).items()))

    @classmethod
    def make(cls, name: str,
             em_overrides: Optional[Mapping[str, Any]] = None
             ) -> "AcquisitionVariant":
        return cls(name=name,
                   em_overrides=tuple((em_overrides or {}).items()))

    def overrides_dict(self) -> Dict[str, Any]:
        return dict(self.em_overrides)

    def build_em_config(self) -> EMAcquisitionConfig:
        """The acquisition configuration of this variant."""
        return apply_em_overrides(EMAcquisitionConfig(),
                                  self.overrides_dict())


#: The unmodified paper bench.
DEFAULT_VARIANT = AcquisitionVariant(name="paper")


@dataclass(frozen=True)
class GridCell:
    """One executable cell of the campaign grid."""

    index: int
    num_dies: int
    variant: AcquisitionVariant
    metric: str

    @property
    def acquisition_key(self) -> Tuple[int, str]:
        """Cells sharing this key reuse the same acquired traces."""
        return (self.num_dies, self.variant.name)

    @property
    def is_delay(self) -> bool:
        """True if this cell runs the delay study rather than an EM one."""
        return self.metric in KNOWN_DELAY_METRICS

    @property
    def is_fault(self) -> bool:
        """True if this cell runs a glitch-grid fault-injection sweep."""
        return self.metric in KNOWN_FAULT_METRICS

    def describe(self) -> str:
        return (f"cell {self.index}: {self.num_dies} dies, "
                f"variant {self.variant.name!r}, metric {self.metric!r}")


@dataclass
class CampaignSpec:
    """Declarative description of a scenario-sweep campaign."""

    name: str = "campaign"
    trojans: Tuple[str, ...] = ("HT1", "HT2", "HT3")
    die_counts: Tuple[int, ...] = (8,)
    variants: Tuple[AcquisitionVariant, ...] = (DEFAULT_VARIANT,)
    metrics: Tuple[str, ...] = ("local_maxima_sum",)
    seed: int = 2015
    plaintext: bytes = DEFAULT_PLAINTEXT
    key: bytes = DEFAULT_KEY
    workers: int = 1
    save_traces: bool = False
    #: Fault-tolerance knobs of the supervised execution layer
    #: (:mod:`repro.campaigns.supervisor`).  Execution-only: they never
    #: enter content keys, so tuning them keeps the store warm.
    #: ``max_retries`` bounds retries *after* the first attempt of a
    #: cell; ``cell_timeout_s`` bounds one attempt's wall-clock in
    #: multi-worker runs (``None`` = no timeout); ``retry_backoff_s`` is
    #: the exponential-backoff base between attempts.
    max_retries: int = 2
    cell_timeout_s: Optional[float] = None
    retry_backoff_s: float = 0.5
    #: Array/kernel backend the engine activates while executing each
    #: cell (:mod:`repro.backend`): ``"numpy"`` (default, the pinned
    #: uint8 reference kernel), ``"bitslice"`` (uint64 bitplane netlist
    #: kernel) or any registered accelerator backend.  Execution-only:
    #: every backend is bit-identical to numpy, so the field never
    #: enters store content keys and a warm store stays warm.
    kernel_backend: str = "numpy"
    #: Delay-study campaign sizes (used by ``delay_*`` metric cells).
    num_pk_pairs: int = 4
    delay_repetitions: int = 3
    #: Stimulus diversity of the EM cells: 1 keeps the paper's fixed
    #: plaintext; N > 1 sweeps ``plaintext`` plus N - 1 seed-derived
    #: random plaintexts through the batched whole-stimulus kernel and
    #: scores each die on its stimulus-averaged trace.
    num_plaintexts: int = 1
    #: Glitch-grid axes of the fault-injection sweep cells
    #: (``fault_coverage`` metric): glitch offsets, pulse widths and
    #: nominal clock periods, in ps.  Empty tuples (the default) let the
    #: engine auto-calibrate the grid on the golden die's worst observed
    #: path, mirroring the delay sweeps' calibration.
    glitch_offsets_ps: Tuple[float, ...] = ()
    glitch_widths_ps: Tuple[float, ...] = ()
    glitch_periods_ps: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        self.trojans = tuple(self.trojans)
        self.die_counts = tuple(int(count) for count in self.die_counts)
        self.variants = tuple(self.variants)
        self.metrics = tuple(self.metrics)
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if not self.trojans:
            raise ValueError("a campaign needs at least one trojan")
        unknown_trojans = [name for name in self.trojans
                           if name not in TROJAN_SPECS]
        if unknown_trojans:
            raise ValueError(
                f"unknown trojan(s) {unknown_trojans}; available: "
                + ", ".join(TROJAN_SPECS)
            )
        if not self.die_counts or min(self.die_counts) < 2:
            raise ValueError("die_counts must all be >= 2 (the population "
                             "detector needs at least two golden dies)")
        if not self.variants:
            raise ValueError("a campaign needs at least one variant")
        if len({variant.name for variant in self.variants}) != len(self.variants):
            raise ValueError("variant names must be unique")
        unknown = [m for m in self.metrics if m not in KNOWN_METRICS]
        if not self.metrics or unknown:
            raise ValueError(
                f"unknown metric(s) {unknown}; available: "
                + ", ".join(KNOWN_METRICS)
            )
        if len(self.plaintext) != 16:
            raise ValueError("plaintext must be 16 bytes")
        if len(self.key) not in (16, 24, 32):
            raise ValueError("key must be 16, 24 or 32 bytes")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.cell_timeout_s is not None:
            self.cell_timeout_s = float(self.cell_timeout_s)
            if self.cell_timeout_s <= 0:
                raise ValueError("cell_timeout_s must be positive (or None "
                                 "to disable the per-cell timeout)")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        self.kernel_backend = str(self.kernel_backend)
        if self.kernel_backend not in known_backend_names():
            raise ValueError(
                f"unknown kernel_backend {self.kernel_backend!r}; "
                "registered: " + ", ".join(known_backend_names())
            )
        if self.num_pk_pairs < 1:
            raise ValueError("num_pk_pairs must be >= 1")
        if self.delay_repetitions < 1:
            raise ValueError("delay_repetitions must be >= 1")
        if self.num_plaintexts < 1:
            raise ValueError("num_plaintexts must be >= 1")
        for axis_name in ("glitch_offsets_ps", "glitch_widths_ps",
                          "glitch_periods_ps"):
            values = tuple(float(v) for v in getattr(self, axis_name))
            if values and min(values) <= 0:
                raise ValueError(f"{axis_name} must all be positive")
            setattr(self, axis_name, values)
        axes = (self.glitch_offsets_ps, self.glitch_widths_ps,
                self.glitch_periods_ps)
        if any(axes) and not all(axes):
            raise ValueError(
                "glitch grid axes must be given together (offsets, widths "
                "and periods) or all left empty for auto-calibration"
            )

    def stimulus_plaintexts(self) -> List[bytes]:
        """The EM stimulus set of this campaign.

        ``[plaintext]`` for the paper's fixed-stimulus scenario;
        otherwise ``plaintext`` followed by ``num_plaintexts - 1``
        random plaintexts derived deterministically from the campaign
        seed (growing ``num_plaintexts`` extends the set without
        reshuffling it).
        """
        return campaign_stimuli(self.num_plaintexts, self.seed,
                                first=self.plaintext)

    # -- grid expansion ----------------------------------------------------------

    def grid(self) -> List[GridCell]:
        """Expand the spec into its ordered list of grid cells.

        Delay and fault-sweep metrics are emitted once per die count
        (under the first variant): the clock-glitch bench is not
        configured by the EM acquisition overrides, so crossing those
        cells with every variant would only duplicate identical rows
        and, with a process pool, re-run identical measurements.
        """
        cells: List[GridCell] = []
        for num_dies in self.die_counts:
            for variant_index, variant in enumerate(self.variants):
                for metric in self.metrics:
                    if variant_index and metric not in KNOWN_EM_METRICS:
                        continue
                    cells.append(GridCell(
                        index=len(cells),
                        num_dies=num_dies,
                        variant=variant,
                        metric=metric,
                    ))
        return cells

    def num_cells(self) -> int:
        return len(self.grid())

    def shard(self, index: int, count: int) -> List[GridCell]:
        """Deterministic partition of the grid for multi-process/host runs.

        Cells are dealt round-robin by their *global* grid index
        (``cell.index % count == index``), so:

        * shards are pairwise **disjoint** and their union is **exactly**
          :meth:`grid` (every cell lands in one shard);
        * the partition is **deterministic** — equal specs give equal
          shards on every host;
        * cells keep their unsharded indices, so results merged from
          shard runs (:func:`repro.campaigns.engine.merge_campaign_results`)
          are row-for-row identical to a single unsharded run.

        Round-robin (rather than contiguous block) dealing spreads each
        (die count, variant) acquisition group over shards evenly, which
        balances wall-clock when die counts differ in cost.
        """
        count = int(count)
        index = int(index)
        if count < 1:
            raise ValueError("shard count must be >= 1")
        if not 0 <= index < count:
            raise ValueError(
                f"shard index must be in [0, {count}), got {index}"
            )
        return [cell for cell in self.grid() if cell.index % count == index]

    # -- (de)serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trojans": list(self.trojans),
            "die_counts": list(self.die_counts),
            "variants": [
                {"name": variant.name,
                 "em_overrides": variant.overrides_dict()}
                for variant in self.variants
            ],
            "metrics": list(self.metrics),
            "seed": self.seed,
            "plaintext": self.plaintext.hex(),
            "key": self.key.hex(),
            "workers": self.workers,
            "save_traces": self.save_traces,
            "max_retries": self.max_retries,
            "cell_timeout_s": self.cell_timeout_s,
            "retry_backoff_s": self.retry_backoff_s,
            "kernel_backend": self.kernel_backend,
            "num_pk_pairs": self.num_pk_pairs,
            "delay_repetitions": self.delay_repetitions,
            "num_plaintexts": self.num_plaintexts,
            "glitch_offsets_ps": list(self.glitch_offsets_ps),
            "glitch_widths_ps": list(self.glitch_widths_ps),
            "glitch_periods_ps": list(self.glitch_periods_ps),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        kwargs: Dict[str, Any] = dict(payload)
        if "variants" in kwargs:
            kwargs["variants"] = tuple(
                AcquisitionVariant.make(entry["name"],
                                        entry.get("em_overrides"))
                for entry in kwargs["variants"]
            )
        for key_name in ("plaintext", "key"):
            if isinstance(kwargs.get(key_name), str):
                kwargs[key_name] = bytes.fromhex(kwargs[key_name])
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(kwargs) - known
        if unknown:
            raise ValueError(f"unknown campaign spec field(s) {sorted(unknown)}")
        return cls(**kwargs)

    def save(self, path: PathLike) -> Path:
        """Write the spec as JSON."""
        path = Path(path)
        if path.suffix != ".json":
            path = path.with_suffix(".json")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: PathLike) -> "CampaignSpec":
        """Load a spec previously written by :meth:`save` (or hand-written)."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"campaign spec {path} does not exist")
        return cls.from_dict(json.loads(path.read_text()))
