"""Batched campaign execution.

:class:`CampaignEngine` executes a :class:`~repro.campaigns.spec.CampaignSpec`
grid far faster than naively re-running ``run_population_em_study`` per
cell:

* **batched acquisition** — every (design, die-population) trace set is
  synthesised in one vectorised NumPy pass
  (:meth:`~repro.measurement.em_simulator.EMSimulator.acquire_batch`);
* **memoised designs** — the golden design is built once and trojan
  insertion happens once per trojan name, shared by every grid cell
  through a common infected-design cache;
* **memoised fingerprints** — acquired trace sets and the fitted golden
  EM references are cached per (die count, acquisition variant), so
  cells that differ only in the detection metric re-score cached traces
  instead of re-acquiring;
* **supervised parallelism** — independent grid cells can be spread
  over a fleet of supervised worker processes (``spec.workers > 1``,
  :class:`~repro.campaigns.supervisor.CampaignSupervisor`); results are
  identical to the serial order, and worker crashes, hung cells and
  raising cells are retried with backoff then quarantined as explicit
  ``failed`` rows instead of aborting the grid;
* **delay-study cells** — grid cells carrying a ``delay_*`` metric run
  the Sec. III clock-glitch campaign across the die population through
  the compiled timing kernel: one
  :meth:`~repro.measurement.delay_meter.PathDelayMeter.measure_batch`
  call covers every (pair, device) combination, and cells differing
  only in metric re-score the cached Eq. (4) difference matrices;
* **content-addressed persistence** — with a
  :class:`~repro.store.ArtifactStore` attached, the acquisition/delay
  caches, the infected-design summaries and every finished cell's rows
  *read through* the store: a rerun (same spec fragment, any campaign
  name, any host) loads instead of recomputing, an interrupted run
  resumes with only the missing cells, and
  :meth:`CampaignSpec.shard`-ed runs on separate processes or hosts
  share artifacts and are fused back with
  :func:`merge_campaign_results` into a result row-for-row identical to
  an unsharded run.

The paper's Sec. V study itself lives in
:func:`repro.core.pipeline.run_population_em_study` (re-exported here);
both the platform method and the engine's grid cells are thin wrappers
over that one implementation.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend import use_backend
from ..analysis.batch import (
    false_negative_rates,
    fit_gaussians_batch,
    pooled_std_batch,
)
from ..analysis.gaussian import fit_gaussian
from ..analysis.traces import stack_traces
from ..core.delay_detector import DelayDetector
from ..core.fingerprint import DelayFingerprint
from ..core.metrics import (
    L1TraceMetric,
    LocalMaximaSumMetric,
    MaxDifferenceMetric,
    false_negative_rate,
)
from ..core.pipeline import (
    HTDetectionPlatform,
    PlatformConfig,
    run_population_em_study,
)
from ..core.report import format_table
from ..fpga.design import GoldenDesign
from ..fpga.device import FPGADevice, virtex5_lx30
from ..io.results import save_result, save_summary_csv
from ..io.tracefile import save_traces
from ..attacks.glitch_grid import (
    GlitchGrid,
    device_fault_coverages,
    synthesise_faulted_sweep,
)
from ..crypto.batch import as_block_matrix, expand_keys, round_states_with_keys
from ..measurement.delay_meter import (
    DelayMeasurementConfig,
    PlaintextKeyPair,
    generate_pk_pairs,
)
from ..measurement.em_simulator import EMTrace
from ..store import (
    DEFAULT_GOLDEN_SIGNATURE,
    ArtifactStore,
    cell_result_key,
    delay_differences_key,
    fault_sweep_key,
    golden_signature,
    infected_summary_key,
    pack_delay_differences,
    pack_fault_sweep,
    pack_population_traces,
    population_traces_key,
    spec_content_fragment,
    unpack_delay_differences,
    unpack_fault_sweep,
    unpack_population_traces,
)
from ..trojan.insertion import InfectedDesign, insert_trojan
from ..trojan.library import build_trojan
from .spec import CampaignSpec, GridCell

PathLike = Union[str, Path]

#: Metric registry: spec metric name -> factory.
METRIC_FACTORIES = {
    "local_maxima_sum": LocalMaximaSumMetric,
    "l1": L1TraceMetric,
    "max_difference": MaxDifferenceMetric,
}


#: Delay-metric registry: spec metric name -> scorer over the Eq. (4)
#: per-(pair, bit) difference matrix of one device campaign.  These
#: per-device scorers are the serial references of
#: :data:`DELAY_METRIC_BATCH_SCORERS`.
DELAY_METRIC_SCORERS = {
    # Worst per-bit shift anywhere (the paper's device-level score: one
    # disturbed net is enough).
    "delay_max_difference":
        lambda differences: float(differences.max()),
    # Mean over pairs of the per-pair worst shift (rewards trojans whose
    # influence shows on many stimuli, damps single-pair outliers).
    "delay_mean_pair_max":
        lambda differences: float(differences.max(axis=1).mean()),
}


#: Batched delay scorers over a stacked ``(devices, pairs, bits)``
#: difference tensor; each returns the ``(devices,)`` score vector,
#: bit-identical to looping the :data:`DELAY_METRIC_SCORERS` serial
#: reference over the planes.
DELAY_METRIC_BATCH_SCORERS = {
    "delay_max_difference":
        lambda differences: differences.max(axis=(1, 2)),
    "delay_mean_pair_max":
        lambda differences: differences.max(axis=2).mean(axis=1),
}


def build_metric(name: str):
    """Instantiate an EM detection metric from its campaign-spec name."""
    try:
        return METRIC_FACTORIES[name]()
    except KeyError as exc:
        raise KeyError(
            f"unknown metric {name!r}; available: "
            + ", ".join(METRIC_FACTORIES)
        ) from exc


def build_delay_scorer(name: str):
    """Resolve a (serial) delay-metric scorer from its campaign-spec name."""
    try:
        return DELAY_METRIC_SCORERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown delay metric {name!r}; available: "
            + ", ".join(DELAY_METRIC_SCORERS)
        ) from exc


def build_delay_batch_scorer(name: str):
    """Resolve a batched delay-metric scorer from its campaign-spec name."""
    try:
        return DELAY_METRIC_BATCH_SCORERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown delay metric {name!r}; available: "
            + ", ".join(DELAY_METRIC_BATCH_SCORERS)
        ) from exc


@dataclass
class _DelayStudyData:
    """Cached Eq. (4) difference tensors of one delay campaign.

    Stacked ``(dies, pairs, bits)`` tensors: ``golden_differences[die]``
    is the clean control on die ``die``;
    ``infected_differences[trojan][die]`` the infected device on that
    die.  All metrics of a grid re-score these tensors (one batched
    scorer call per population) instead of re-measuring.
    """

    golden_differences: "np.ndarray"
    infected_differences: Dict[str, "np.ndarray"]


@dataclass
class _FaultSweepData:
    """Cached faulted-ciphertext tensors of one glitch-grid sweep.

    ``correct`` is the ``(N, 16)`` fault-free capture of the attacked
    round per stimulus; the faulted tensors are ``(dies, grid points,
    N, 16)`` — ``golden_faulted[die]`` the clean control,
    ``infected_faulted[trojan][die]`` the infected device on that die.
    ``grid`` is the *resolved* glitch grid (after auto-calibration).
    """

    grid: GlitchGrid
    plaintexts: "np.ndarray"
    correct: "np.ndarray"
    golden_faulted: "np.ndarray"
    infected_faulted: Dict[str, "np.ndarray"]


@dataclass
class CampaignRow:
    """One summary row: one trojan in one grid cell."""

    cell_index: int
    num_dies: int
    variant: str
    metric: str
    trojan: str
    area_fraction: float
    mu: float
    sigma: float
    false_negative_rate: float
    detection_probability: float

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignRow":
        return cls(**{field.name: payload[field.name]
                      for field in dataclasses.fields(cls)})


@dataclass
class CampaignCellResult:
    """Outcome of one executed grid cell.

    ``status`` is ``"ok"`` for a computed cell and ``"failed"`` for a
    poison cell the supervisor quarantined after exhausting its retries
    (``error`` then carries the per-attempt failure log and ``rows`` is
    empty).  Failed cells travel through save/merge/CSV as explicit
    degraded rows, are skipped by reporting, and count as *pending* on
    resume so a rerun retries exactly them.
    """

    index: int
    num_dies: int
    variant: str
    metric: str
    rows: List[CampaignRow]
    golden_score_mean: float
    golden_score_std: float
    elapsed_s: float
    trace_archive: Optional[str] = None
    status: str = "ok"
    error: Optional[str] = None
    #: Attempts consumed to produce this outcome (1 = first try).
    attempts: int = 1

    def false_negative_rates(self) -> Dict[str, float]:
        return {row.trojan: row.false_negative_rate for row in self.rows}

    @classmethod
    def failed(cls, cell: GridCell, error: str,
               attempts: int) -> "CampaignCellResult":
        """The explicit quarantine row of a cell that failed every retry."""
        return cls(
            index=cell.index,
            num_dies=cell.num_dies,
            variant=cell.variant.name,
            metric=cell.metric,
            rows=[],
            golden_score_mean=0.0,
            golden_score_std=0.0,
            elapsed_s=0.0,
            status="failed",
            error=error,
            attempts=attempts,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "num_dies": self.num_dies,
            "variant": self.variant,
            "metric": self.metric,
            "golden_score_mean": self.golden_score_mean,
            "golden_score_std": self.golden_score_std,
            "elapsed_s": self.elapsed_s,
            "trace_archive": self.trace_archive,
            "status": self.status,
            "error": self.error,
            "attempts": self.attempts,
            "rows": [row.to_dict() for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignCellResult":
        return cls(
            index=payload["index"],
            num_dies=payload["num_dies"],
            variant=payload["variant"],
            metric=payload["metric"],
            rows=[CampaignRow.from_dict(row) for row in payload["rows"]],
            golden_score_mean=payload["golden_score_mean"],
            golden_score_std=payload["golden_score_std"],
            elapsed_s=payload["elapsed_s"],
            trace_archive=payload.get("trace_archive"),
            # Pre-supervisor records carry no status: they were only
            # ever written for successfully computed cells.
            status=payload.get("status", "ok"),
            error=payload.get("error"),
            attempts=payload.get("attempts", 1),
        )


@dataclass
class CampaignResult:
    """All cells of one campaign run, plus reporting helpers.

    A sharded run carries only its shard's cells (with their *global*
    grid indices) and records the ``(index, count)`` pair; shard results
    are fused back into a full-grid result with
    :func:`merge_campaign_results`.
    """

    spec: CampaignSpec
    cells: List[CampaignCellResult]
    elapsed_s: float = 0.0
    shard: Optional[Tuple[int, int]] = None

    def rows(self) -> List[CampaignRow]:
        """Summary rows of the successfully computed cells only."""
        return [row for cell in self.cells if cell.status == "ok"
                for row in cell.rows]

    def failed_cells(self) -> List[CampaignCellResult]:
        """The quarantined poison cells of a degraded run."""
        return [cell for cell in self.cells if cell.status != "ok"]

    def report(self) -> str:
        table = format_campaign_rows([row.to_dict()
                                      for row in self.rows()])
        failed = self.failed_cells()
        if failed:
            notes = [""]
            for cell in failed:
                notes.append(
                    f"cell {cell.index} FAILED after {cell.attempts} "
                    f"attempt(s): {cell.error}"
                )
            notes.append(
                f"{len(failed)} cell(s) quarantined; rerun with the same "
                f"store to retry only them"
            )
            table += "\n".join(notes)
        return table

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "elapsed_s": self.elapsed_s,
            "shard": list(self.shard) if self.shard is not None else None,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignResult":
        shard = payload.get("shard")
        return cls(
            spec=CampaignSpec.from_dict(payload["spec"]),
            cells=[CampaignCellResult.from_dict(cell)
                   for cell in payload["cells"]],
            elapsed_s=payload.get("elapsed_s", 0.0),
            shard=tuple(shard) if shard is not None else None,
        )

    def save(self, directory: PathLike) -> Path:
        """Persist the summary (JSON + CSV) under ``directory``.

        Per-cell trace artifacts are written by the engine during the
        run (``spec.save_traces``); this stores the machine-readable
        summary next to them: one JSON tree and one CSV with one row per
        (cell, trojan).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        summary_path = save_result(directory / f"{self.spec.name}.json",
                                   self.to_dict())
        rows = [dict(row.to_dict(), status="ok") for row in self.rows()]
        # Quarantined cells appear as explicit degraded stub rows so a
        # CSV consumer sees the coverage hole instead of silently
        # missing rows.
        for cell in self.failed_cells():
            rows.append({
                "cell_index": cell.index,
                "num_dies": cell.num_dies,
                "variant": cell.variant,
                "metric": cell.metric,
                "trojan": "",
                "status": cell.status,
                "error": cell.error or "",
            })
        # A shard of a small grid can legitimately hold zero cells; the
        # JSON summary (which campaign merge consumes) is still written,
        # only the CSV — whose column set is undefined with no rows — is
        # skipped.
        if rows:
            save_summary_csv(directory / f"{self.spec.name}.csv", rows)
        return summary_path


def _format_score(value: float) -> str:
    """Row-table number format across metric scales.

    EM separations are in the thousands, fault-coverage separations are
    fractions of 1 — integers for the former, three decimals for the
    latter, instead of collapsing every sub-unit value to ``0``.
    """
    return f"{value:.0f}" if abs(value) >= 10.0 else f"{value:.3f}"


def format_campaign_rows(rows: Sequence[Mapping[str, Any]]) -> str:
    """Human-readable table of campaign summary rows."""
    header = ["cell", "dies", "variant", "metric", "trojan", "% of AES",
              "mu", "sigma", "FN rate", "detection"]
    table = [
        [str(row["cell_index"]), str(row["num_dies"]), str(row["variant"]),
         str(row["metric"]), str(row["trojan"]),
         f"{100.0 * row['area_fraction']:.2f}%",
         _format_score(row["mu"]), _format_score(row["sigma"]),
         f"{100.0 * row['false_negative_rate']:.1f}%",
         f"{100.0 * row['detection_probability']:.1f}%"]
        for row in rows
    ]
    return format_table(header, table)


class CampaignEngine:
    """Executes a campaign grid with shared caches and batched acquisition.

    ``store`` (an :class:`~repro.store.ArtifactStore` or a directory
    path) makes every cache *read through* content-addressed on-disk
    artifacts and records per-cell completion, enabling warm reruns,
    resume after interruption, and sharded multi-process/host campaigns.
    """

    def __init__(self, spec: CampaignSpec,
                 device: Optional[FPGADevice] = None,
                 golden: Optional[GoldenDesign] = None,
                 store: Optional[Union[ArtifactStore, PathLike]] = None):
        self.spec = spec
        self.device = device or virtex5_lx30()
        # The golden design is built lazily: a fully warm store-backed
        # run needs no design at all, so it must not pay for synthesis.
        self._golden: Optional[GoldenDesign] = golden
        self._golden_signature: Any = (
            DEFAULT_GOLDEN_SIGNATURE if golden is None
            else golden_signature(golden)
        )
        if store is None or isinstance(store, (str, Path)):
            self.store = (None if store is None
                          else ArtifactStore(store))
        elif isinstance(store, Mapping):
            # A spawn_config dict (local/remote/tiered) — how worker
            # processes receive tiered stores, which are not picklable
            # as live objects.
            from ..store import build_store
            self.store = build_store(store)
        else:
            # Any object with the store surface (ArtifactStore,
            # TieredStore, RemoteStore, chaos stores) is used as-is.
            self.store = store
        #: Trojan insertion cache shared by every platform of the grid.
        self._infected_cache: Dict[str, InfectedDesign] = {}
        self._platform_cache: Dict[Tuple[int, str], HTDetectionPlatform] = {}
        self._acquisition_cache: Dict[
            Tuple[int, str], Tuple[List[EMTrace], Dict[str, List[EMTrace]]]
        ] = {}
        #: Stacked (dies x samples) score inputs — seeded straight from
        #: the acquisition tensors (or stacked once from store-loaded
        #: traces) per acquisition key and shared by every metric cell,
        #: so scoring never re-converts the same population.
        self._matrix_cache: Dict[
            Tuple[int, str], Tuple[np.ndarray, Dict[str, np.ndarray]]
        ] = {}
        #: Freshly acquired populations in tensor form, kept so the
        #: EMTrace boundary (:meth:`acquire_cell_traces`) can wrap them
        #: on demand without re-acquiring.
        self._tensor_cache: Dict[Tuple[int, str], Any] = {}
        #: Delay campaign measurements keyed by die count (the delay
        #: bench is not affected by the EM acquisition variant, so cells
        #: that differ only in variant or metric share one measurement).
        self._delay_cache: Dict[int, "_DelayStudyData"] = {}
        #: Fault-sweep tensors keyed by die count (the glitch bench is
        #: likewise independent of the EM acquisition variant).
        self._fault_cache: Dict[int, "_FaultSweepData"] = {}
        self._area_fraction_cache: Dict[str, float] = {}
        self._artifact_dir: Optional[Path] = None
        self._saved_archives: Dict[Tuple[int, str], str] = {}
        #: Grid indices of the cells the current ``run`` invocation
        #: covers (``None`` outside ``run`` = the whole grid); sharded
        #: runs use it to decide trace-archive ownership among the
        #: cells actually present.
        self._active_indices: Optional[frozenset] = None

    @property
    def golden(self) -> GoldenDesign:
        """The golden design (built on first use)."""
        if self._golden is None:
            self._golden = GoldenDesign.build(device=self.device)
        return self._golden

    # -- caches -------------------------------------------------------------------

    def infected_design(self, trojan_name: str) -> InfectedDesign:
        """Build (and cache) the infected design for a catalog trojan.

        Same contract as
        :meth:`~repro.core.pipeline.HTDetectionPlatform.infected_design`;
        the cache dict is shared with every platform of the grid.
        """
        if trojan_name not in self._infected_cache:
            trojan = build_trojan(trojan_name, self.device)
            self._infected_cache[trojan_name] = insert_trojan(self.golden,
                                                              trojan)
        return self._infected_cache[trojan_name]

    def trojan_area_fraction(self, trojan_name: str) -> float:
        """The trojan's area as a fraction of the AES design.

        Reads through the store: a warm run prints its ``% of AES``
        column without paying for golden synthesis and trojan insertion.
        """
        if trojan_name in self._area_fraction_cache:
            return self._area_fraction_cache[trojan_name]
        store_key = None
        if self.store is not None:
            store_key = infected_summary_key(
                device=self.device, golden=self._golden_signature,
                trojan=trojan_name,
            )
            # load_json folds a corrupt (quarantined) object into a
            # miss, so a torn store write costs a recompute, not a
            # crashed campaign.
            payload = self.store.load_json(store_key)
            if payload is not None:
                fraction = float(payload["area_fraction_of_aes"])
                self._area_fraction_cache[trojan_name] = fraction
                return fraction
        fraction = float(self.infected_design(trojan_name)
                         .area_fraction_of_aes())
        if store_key is not None:
            self.store.put_json(
                store_key,
                {"trojan": trojan_name, "area_fraction_of_aes": fraction},
                kind="infected_summary", meta={"trojan": trojan_name},
            )
        self._area_fraction_cache[trojan_name] = fraction
        return fraction

    def platform_for(self, cell: GridCell) -> HTDetectionPlatform:
        """The (cached) detection platform of one grid cell.

        Platforms are cached per (die count, variant): they share the
        golden design and the infected-design cache, so the expensive
        synthesis/insertion work happens once for the whole campaign.
        """
        cache_key = cell.acquisition_key
        if cache_key not in self._platform_cache:
            config = PlatformConfig(
                num_dies=cell.num_dies,
                seed=self.spec.seed,
                delay=DelayMeasurementConfig(
                    repetitions=self.spec.delay_repetitions,
                    seed=self.spec.seed,
                ),
                em=cell.variant.build_em_config(),
            )
            self._platform_cache[cache_key] = HTDetectionPlatform(
                device=self.device,
                config=config,
                golden=self.golden,
                infected_cache=self._infected_cache,
            )
        return self._platform_cache[cache_key]

    def _population_store_key(self, cell: GridCell) -> Optional[str]:
        if self.store is None:
            return None
        return population_traces_key(
            device=self.device, golden=self._golden_signature,
            em_config=cell.variant.build_em_config(),
            seed=self.spec.seed, num_dies=cell.num_dies,
            trojans=self.spec.trojans, key=self.spec.key,
            plaintexts=self.spec.stimulus_plaintexts(),
        )

    def _acquire_cell_tensors(self, cell: GridCell):
        """Acquire (and memoise) one cell's population in tensor form."""
        cache_key = cell.acquisition_key
        if cache_key in self._tensor_cache:
            return self._tensor_cache[cache_key]
        plaintexts = self.spec.stimulus_plaintexts()
        platform = self.platform_for(cell)
        if len(plaintexts) == 1:
            tensors = platform.acquire_population_tensors(
                self.spec.trojans, plaintexts[0], self.spec.key
            )
        else:
            # Whole-stimulus tensor acquisition with one axis reduction
            # per design (:func:`average_stimulus_tensor`).
            tensors = platform.acquire_population_tensors_stimuli(
                self.spec.trojans, plaintexts, self.spec.key
            )
        self._tensor_cache[cache_key] = tensors
        self._matrix_cache.setdefault(
            cache_key,
            (tensors.golden,
             {name: tensors.infected[name] for name in self.spec.trojans}),
        )
        return tensors

    def acquire_cell_traces(self, cell: GridCell
                            ) -> Tuple[List[EMTrace], Dict[str, List[EMTrace]]]:
        """Acquire (or reuse) the population traces of one grid cell.

        This is the golden-fingerprint cache: cells that differ only in
        the metric share the acquired traces and therefore the golden
        reference they induce.  With ``spec.num_plaintexts > 1`` the
        whole stimulus set is acquired in batched
        (:meth:`~repro.measurement.em_simulator.EMSimulator.acquire_many_batch`)
        passes and each die is represented by its stimulus-averaged
        trace.  This is the :class:`EMTrace` *persistence boundary* —
        scoring runs on the tensors of :meth:`cell_trace_matrices`;
        trace objects are wrapped here for the store and the trace
        archives (and on demand from an already-acquired tensor, without
        re-acquiring).
        """
        cache_key = cell.acquisition_key
        if cache_key in self._acquisition_cache:
            return self._acquisition_cache[cache_key]
        store_key = self._population_store_key(cell)
        if store_key is not None:
            stored = self.store.load_arrays(store_key)
            if stored is not None:
                self._acquisition_cache[cache_key] = (
                    unpack_population_traces(stored))
                return self._acquisition_cache[cache_key]
        tensors = self._acquire_cell_tensors(cell)
        self._acquisition_cache[cache_key] = tensors.to_traces()
        if store_key is not None:
            golden_traces, infected_traces = self._acquisition_cache[cache_key]
            self.store.put_arrays(
                store_key,
                pack_population_traces(golden_traces, infected_traces),
                kind="population_traces",
                meta={"num_dies": cell.num_dies,
                      "variant": cell.variant.name,
                      "num_plaintexts":
                          len(self.spec.stimulus_plaintexts())},
            )
        return self._acquisition_cache[cache_key]

    def cell_trace_matrices(self, cell: GridCell
                            ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """The cell's population as stacked ``(dies, samples)`` matrices.

        Memoised per acquisition key: cells that differ only in the
        metric share one population, and every scorer consumes the
        matrices directly (:mod:`repro.analysis.batch`).  Fresh
        acquisitions stay tensor-resident end-to-end (no intermediate
        :class:`EMTrace` objects); only a store hit — whose payload *is*
        trace objects — pays one stacking pass, and a store-backed cold
        run wraps traces once for the store write while the matrices
        come straight from the acquisition tensors.
        """
        cache_key = cell.acquisition_key
        if cache_key in self._matrix_cache:
            return self._matrix_cache[cache_key]
        store_key = self._population_store_key(cell)
        if store_key is None and cache_key not in self._acquisition_cache:
            # No store attached: acquire in tensor form and skip the
            # EMTrace boundary entirely (the trace archive, if enabled,
            # wraps the cached tensors later without re-acquiring).
            self._acquire_cell_tensors(cell)
            return self._matrix_cache[cache_key]
        golden_traces, infected_traces = self.acquire_cell_traces(cell)
        if cache_key not in self._matrix_cache:
            # Store hit: stack the loaded trace lists once.
            self._matrix_cache[cache_key] = (
                stack_traces(golden_traces),
                {name: stack_traces(infected_traces[name])
                 for name in self.spec.trojans},
            )
        return self._matrix_cache[cache_key]

    def delay_study_data(self, cell: GridCell) -> "_DelayStudyData":
        """Measure (or reuse) the delay campaigns of one grid cell.

        One batched clock-glitch campaign per die count: the golden
        fingerprint is measured on die 0, then every (clean die,
        infected die x trojan) device is measured in a single
        :meth:`~repro.measurement.delay_meter.PathDelayMeter.measure_batch`
        call — the compiled timing kernel sweeps the whole
        (pairs x devices) grid in a few array passes.  Cells that differ
        only in the metric (or the EM variant) re-score the cached
        Eq. (4) difference matrices.
        """
        num_dies = cell.num_dies
        if num_dies in self._delay_cache:
            return self._delay_cache[num_dies]
        store_key = None
        if self.store is not None:
            store_key = delay_differences_key(
                device=self.device, golden=self._golden_signature,
                delay_config=DelayMeasurementConfig(
                    repetitions=self.spec.delay_repetitions,
                    seed=self.spec.seed,
                ),
                seed=self.spec.seed, num_dies=num_dies,
                trojans=self.spec.trojans,
                num_pk_pairs=self.spec.num_pk_pairs,
            )
            stored = self.store.load_arrays(store_key)
            if stored is not None:
                golden_differences, infected_differences = (
                    unpack_delay_differences(stored)
                )
                self._delay_cache[num_dies] = _DelayStudyData(
                    golden_differences=np.stack(golden_differences),
                    infected_differences={
                        name: np.stack(matrices)
                        for name, matrices in infected_differences.items()
                    },
                )
                return self._delay_cache[num_dies]
        spec = self.spec
        platform = self.platform_for(cell)
        meter = platform.delay_meter
        pairs = generate_pk_pairs(spec.num_pk_pairs, seed=spec.seed + 7)

        golden_dut = platform.golden_dut(0, label="GM")
        fingerprint_measurement = meter.measure_batch(
            [golden_dut], pairs, None, seeds=[spec.seed]
        )[0]
        # Per-pair sweeps calibrated on the golden model, reused for
        # every device so step counts stay comparable (Sec. III-B).
        glitch = {
            pair.index: pair_measurement.glitch
            for pair, pair_measurement in zip(
                pairs, fingerprint_measurement.pairs)
        }
        detector = DelayDetector(
            DelayFingerprint.from_measurement(fingerprint_measurement)
        )

        duts = []
        for die_index in range(num_dies):
            duts.append(platform.golden_dut(die_index,
                                            label=f"Clean_die{die_index}"))
        for name in spec.trojans:
            for die_index in range(num_dies):
                duts.append(platform.infected_dut(name, die_index))
        # One seed per device position: injective for any population
        # size, so no two devices ever share a noise stream.
        seeds = [spec.seed + 100 + position
                 for position in range(len(duts))]
        measurements = meter.measure_batch(duts, pairs, glitch,
                                           seeds=seeds)

        # One batched Eq. (4) evaluation over every (device, die)
        # campaign, then views into the stacked tensor per population.
        differences = detector.difference_ps_batch(measurements)
        infected_differences: Dict[str, np.ndarray] = {}
        for trojan_index, name in enumerate(spec.trojans):
            begin = num_dies * (1 + trojan_index)
            infected_differences[name] = differences[begin:begin + num_dies]
        self._delay_cache[num_dies] = _DelayStudyData(
            golden_differences=differences[:num_dies],
            infected_differences=infected_differences,
        )
        if store_key is not None:
            self.store.put_arrays(
                store_key,
                pack_delay_differences(differences[:num_dies],
                                       infected_differences),
                kind="delay_differences",
                meta={"num_dies": num_dies,
                      "num_pk_pairs": self.spec.num_pk_pairs},
            )
        return self._delay_cache[num_dies]

    def _spec_glitch_grid(self) -> Optional[GlitchGrid]:
        """The spec's explicit glitch grid, or None for auto-calibration."""
        if not self.spec.glitch_offsets_ps:
            return None
        return GlitchGrid(
            offsets_ps=self.spec.glitch_offsets_ps,
            widths_ps=self.spec.glitch_widths_ps,
            periods_ps=self.spec.glitch_periods_ps,
        )

    def _fault_sweep_store_key(self, num_dies: int) -> Optional[str]:
        if self.store is None:
            return None
        return fault_sweep_key(
            device=self.device, golden=self._golden_signature,
            delay_config=DelayMeasurementConfig(
                repetitions=self.spec.delay_repetitions,
                seed=self.spec.seed,
            ),
            seed=self.spec.seed, num_dies=num_dies,
            trojans=self.spec.trojans, key=self.spec.key,
            plaintexts=self.spec.stimulus_plaintexts(),
            offsets_ps=self.spec.glitch_offsets_ps,
            widths_ps=self.spec.glitch_widths_ps,
            periods_ps=self.spec.glitch_periods_ps,
        )

    def fault_sweep_data(self, cell: GridCell) -> "_FaultSweepData":
        """Synthesise (or reuse) the glitch-grid sweep of one grid cell.

        One batched fault-injection campaign per die count: per-bit
        arrival times of every (device, stimulus) come from one
        :meth:`~repro.measurement.delay_meter.PathDelayMeter.batch_arrival_times`
        sweep, the attacked round's correct/stale register states from
        one batched-AES pass, and each device's whole (grid x stimulus)
        faulted-ciphertext tensor from one vectorised
        :func:`~repro.attacks.glitch_grid.synthesise_faulted_sweep`
        call.  Cells that differ only in the EM variant share the sweep;
        with a store attached the tensors read through it (the resolved
        grid axes travel in the payload, so warm runs skip calibration
        and the golden build entirely).
        """
        num_dies = cell.num_dies
        if num_dies in self._fault_cache:
            return self._fault_cache[num_dies]
        store_key = self._fault_sweep_store_key(num_dies)
        stored = (self.store.load_arrays(store_key)
                  if store_key is not None else None)
        if stored is not None:
            axes, plaintexts, correct, golden_faulted, infected_faulted = (
                unpack_fault_sweep(stored)
            )
            self._fault_cache[num_dies] = _FaultSweepData(
                grid=GlitchGrid(
                    offsets_ps=tuple(axes["offsets_ps"]),
                    widths_ps=tuple(axes["widths_ps"]),
                    periods_ps=tuple(axes["periods_ps"]),
                ),
                plaintexts=plaintexts,
                correct=correct,
                golden_faulted=golden_faulted,
                infected_faulted=infected_faulted,
            )
            return self._fault_cache[num_dies]
        spec = self.spec
        platform = self.platform_for(cell)
        meter = platform.delay_meter
        plaintexts = spec.stimulus_plaintexts()
        pairs = [PlaintextKeyPair(index=index, plaintext=plaintext,
                                  key=spec.key)
                 for index, plaintext in enumerate(plaintexts)]

        duts = []
        for die_index in range(num_dies):
            duts.append(platform.golden_dut(die_index,
                                            label=f"Clean_die{die_index}"))
        for name in spec.trojans:
            for die_index in range(num_dies):
                duts.append(platform.infected_dut(name, die_index))
        arrivals = meter.batch_arrival_times(duts, pairs)

        # Correct/stale capture values of the attacked round, straight
        # from the batched cipher (row r = register content entering
        # round r, exactly as in the fault staircase).
        attacked = meter.config.attacked_round
        round_keys = expand_keys(spec.key)
        states = round_states_with_keys(as_block_matrix(plaintexts),
                                        round_keys)
        num_rounds = states.shape[1] - 2
        if not 2 <= attacked <= num_rounds:
            raise ValueError(
                f"attacked_round must be in 2..{num_rounds}, got {attacked}"
            )
        correct = states[:, attacked + 1]
        stale = states[:, attacked]

        grid = self._spec_glitch_grid()
        if grid is None:
            # Same calibration philosophy as the delay sweeps: centre
            # the grid on the golden die-0 worst observed path.
            worst = float(np.nanmax(arrivals[0]))
            grid = GlitchGrid.calibrated(worst, meter.config.budget)

        # One seed per device position (offset 500 keeps the streams
        # disjoint from the delay campaign's +100 block).
        faulted = np.stack([
            synthesise_faulted_sweep(
                meter.config.fault_model, grid, correct, stale,
                arrivals[position],
                np.random.default_rng(spec.seed + 500 + position),
            )
            for position in range(len(duts))
        ])
        infected_faulted: Dict[str, np.ndarray] = {}
        for trojan_index, name in enumerate(spec.trojans):
            begin = num_dies * (1 + trojan_index)
            infected_faulted[name] = faulted[begin:begin + num_dies]
        self._fault_cache[num_dies] = _FaultSweepData(
            grid=grid,
            plaintexts=as_block_matrix(plaintexts),
            correct=correct,
            golden_faulted=faulted[:num_dies],
            infected_faulted=infected_faulted,
        )
        if store_key is not None:
            self.store.put_arrays(
                store_key,
                pack_fault_sweep(
                    {"offsets_ps": grid.offsets_ps,
                     "widths_ps": grid.widths_ps,
                     "periods_ps": grid.periods_ps},
                    as_block_matrix(plaintexts), correct,
                    faulted[:num_dies], infected_faulted,
                ),
                kind="fault_sweep",
                meta={"num_dies": num_dies,
                      "num_grid_points": grid.num_points,
                      "num_plaintexts": len(plaintexts)},
            )
        return self._fault_cache[num_dies]

    # -- execution ----------------------------------------------------------------

    def run_cell(self, cell: GridCell) -> CampaignCellResult:
        """Execute one grid cell (EM acquisition, delay study or fault sweep).

        The cell runs under the spec's ``kernel_backend``
        (:mod:`repro.backend`): every hot kernel beneath it — netlist
        evaluation for trojan activity, the timing sweeps, toggle
        counting — dispatches through the seam, with results
        bit-identical to the default ``numpy`` backend.
        """
        with use_backend(self.spec.kernel_backend):
            if cell.is_delay:
                return self._run_delay_cell(cell)
            if cell.is_fault:
                return self._run_fault_cell(cell)
            return self._run_em_cell(cell)

    def _run_fault_cell(self, cell: GridCell) -> CampaignCellResult:
        """Score one fault-sweep cell from the cached ciphertext tensors.

        Same Gaussian characterisation as the delay cells, with the
        per-die score being the device's *fault coverage* over the
        glitch grid — a trojan's altered path delays shift which grid
        points fault, separating the infected population from the clean
        one.  Scoring is one
        :func:`~repro.attacks.glitch_grid.device_fault_coverages` pass
        per population, then batched fits / Eq. (5) rates.
        """
        start = time.perf_counter()
        data = self.fault_sweep_data(cell)
        genuine_scores = device_fault_coverages(data.correct,
                                                data.golden_faulted)
        genuine_fit = fit_gaussian(genuine_scores)
        infected_score_matrix = np.stack(
            [device_fault_coverages(data.correct,
                                    data.infected_faulted[name])
             for name in self.spec.trojans]
        ) if self.spec.trojans else np.zeros((0, genuine_scores.size))
        infected_means, _ = fit_gaussians_batch(infected_score_matrix)
        mus = infected_means - genuine_fit.mean
        sigmas = pooled_std_batch(genuine_scores, infected_score_matrix)
        fn_rates = false_negative_rates(mus, sigmas)
        rows = []
        for trojan_index, name in enumerate(self.spec.trojans):
            fn_rate = float(fn_rates[trojan_index])
            rows.append(CampaignRow(
                cell_index=cell.index,
                num_dies=cell.num_dies,
                variant=cell.variant.name,
                metric=cell.metric,
                trojan=name,
                area_fraction=self.trojan_area_fraction(name),
                mu=float(mus[trojan_index]),
                sigma=float(sigmas[trojan_index]),
                false_negative_rate=fn_rate,
                detection_probability=1.0 - fn_rate,
            ))
        return CampaignCellResult(
            index=cell.index,
            num_dies=cell.num_dies,
            variant=cell.variant.name,
            metric=cell.metric,
            rows=rows,
            golden_score_mean=float(genuine_fit.mean),
            golden_score_std=float(genuine_fit.std),
            elapsed_s=time.perf_counter() - start,
        )

    def _run_delay_cell(self, cell: GridCell) -> CampaignCellResult:
        """Score one delay-study cell from the cached difference tensors.

        Mirrors the EM cells' Gaussian characterisation: the genuine
        population is the per-die score of clean devices against the
        golden fingerprint, the infected population the per-die scores
        of one trojan, and the Eq. (5) overlap gives the
        false-negative rate.  Scoring is batched end-to-end: one
        :data:`DELAY_METRIC_BATCH_SCORERS` pass per population and
        batched Gaussian fits / Eq. (5) rates over the per-trojan score
        matrix (:mod:`repro.analysis.batch`), bit-identical to the
        per-die serial loops.
        """
        start = time.perf_counter()
        data = self.delay_study_data(cell)
        scorer = build_delay_batch_scorer(cell.metric)
        genuine_scores = scorer(data.golden_differences)
        genuine_fit = fit_gaussian(genuine_scores)
        infected_score_matrix = np.stack(
            [scorer(data.infected_differences[name])
             for name in self.spec.trojans]
        ) if self.spec.trojans else np.zeros((0, genuine_scores.size))
        infected_means, _ = fit_gaussians_batch(infected_score_matrix)
        mus = infected_means - genuine_fit.mean
        # Both populations have one score per die and the spec enforces
        # >= 2 dies, so the pooled estimate always applies.
        sigmas = pooled_std_batch(genuine_scores, infected_score_matrix)
        fn_rates = false_negative_rates(mus, sigmas)
        rows = []
        for trojan_index, name in enumerate(self.spec.trojans):
            mu = float(mus[trojan_index])
            sigma = float(sigmas[trojan_index])
            fn_rate = float(fn_rates[trojan_index])
            rows.append(CampaignRow(
                cell_index=cell.index,
                num_dies=cell.num_dies,
                variant=cell.variant.name,
                metric=cell.metric,
                trojan=name,
                area_fraction=self.trojan_area_fraction(name),
                mu=mu,
                sigma=sigma,
                false_negative_rate=fn_rate,
                detection_probability=1.0 - fn_rate,
            ))
        return CampaignCellResult(
            index=cell.index,
            num_dies=cell.num_dies,
            variant=cell.variant.name,
            metric=cell.metric,
            rows=rows,
            golden_score_mean=float(genuine_fit.mean),
            golden_score_std=float(genuine_fit.std),
            elapsed_s=time.perf_counter() - start,
        )

    def _run_em_cell(self, cell: GridCell) -> CampaignCellResult:
        """Execute one EM grid cell: acquire (or reuse) traces, score, decide.

        Scoring is matrix-resident: the cell's population enters the
        study as pre-stacked ``(dies x samples)`` matrices
        (:meth:`cell_trace_matrices`) shared across every metric cell of
        the acquisition key, and the whole-population scores come out of
        the batched kernel passes of :mod:`repro.analysis.batch`.
        """
        start = time.perf_counter()
        golden_matrix, infected_matrices = self.cell_trace_matrices(cell)
        study = run_population_em_study(
            None,
            trojan_names=self.spec.trojans,
            metric=build_metric(cell.metric),
            traces=(golden_matrix, infected_matrices),
            area_fractions={name: self.trojan_area_fraction(name)
                            for name in self.spec.trojans},
        )
        golden_fit = study.characterisations[self.spec.trojans[0]].genuine
        rows = [
            CampaignRow(
                cell_index=cell.index,
                num_dies=cell.num_dies,
                variant=cell.variant.name,
                metric=cell.metric,
                trojan=name,
                area_fraction=study.trojan_area_fractions[name],
                mu=study.characterisations[name].mu,
                sigma=study.characterisations[name].sigma,
                false_negative_rate=study.characterisations[name].false_negative_rate,
                detection_probability=study.characterisations[name].detection_probability,
            )
            for name in self.spec.trojans
        ]
        trace_archive = self._maybe_save_traces(cell)
        return CampaignCellResult(
            index=cell.index,
            num_dies=cell.num_dies,
            variant=cell.variant.name,
            metric=cell.metric,
            rows=rows,
            golden_score_mean=float(golden_fit.mean),
            golden_score_std=float(golden_fit.std),
            elapsed_s=time.perf_counter() - start,
            trace_archive=trace_archive,
        )

    def _maybe_save_traces(self, cell: GridCell) -> Optional[str]:
        """Persist the cell's trace artifact (once per acquisition key).

        Ownership is deterministic — the lowest-index cell of each
        acquisition key writes the archive — so parallel workers never
        race on the same file.  The :class:`EMTrace` objects live in the
        acquisition cache (this persistence boundary is the only scoring
        consumer that needs them; the scorers run on the stacked
        matrices).
        """
        if self._artifact_dir is None or not self.spec.save_traces:
            return None
        cache_key = cell.acquisition_key
        # Delay and fault-sweep cells acquire no EM traces, so ownership
        # is decided among the EM cells of the acquisition key only —
        # and, in a sharded run, among the cells this invocation
        # actually covers (the full-grid owner may live in another
        # shard).
        owner = min(other.index for other in self.spec.grid()
                    if other.acquisition_key == cache_key
                    and not other.is_delay and not other.is_fault
                    and (self._active_indices is None
                         or other.index in self._active_indices))
        archive = (self._artifact_dir
                   / f"traces_d{cell.num_dies}_{cell.variant.name}.npz")
        if cell.index == owner and cache_key not in self._saved_archives:
            golden_traces, infected_traces = self.acquire_cell_traces(cell)
            all_traces = list(golden_traces)
            for name in self.spec.trojans:
                all_traces.extend(infected_traces[name])
            save_traces(archive, all_traces)
            self._saved_archives[cache_key] = str(archive)
        return str(archive)

    # -- per-cell completion records ----------------------------------------------

    def _cell_result_store_key(self, cell: GridCell) -> Optional[str]:
        if self.store is None:
            return None
        return cell_result_key(
            device=self.device, golden=self._golden_signature,
            spec_payload=spec_content_fragment(self.spec.to_dict()),
            cell_index=cell.index,
        )

    def load_cell_result(self, cell: GridCell) -> Optional[CampaignCellResult]:
        """The cell's completion record, if a previous run stored one.

        Failed (quarantined) records and corrupt payloads both count as
        *no record*: the resuming run retries exactly those cells.
        """
        store_key = self._cell_result_store_key(cell)
        if store_key is None:
            return None
        payload = self.store.load_json(store_key)
        if payload is None:
            return None
        result = CampaignCellResult.from_dict(payload)
        return result if result.status == "ok" else None

    def record_cell_result(self, cell: GridCell,
                           result: CampaignCellResult) -> None:
        """Record the cell as complete in the store manifest."""
        store_key = self._cell_result_store_key(cell)
        if store_key is None:
            return
        self.store.put_json(
            store_key, result.to_dict(), kind="campaign_cell",
            meta={"campaign": self.spec.name, "cell_index": cell.index,
                  "num_dies": cell.num_dies, "variant": cell.variant.name,
                  "metric": cell.metric},
        )

    def run(self, artifact_dir: Optional[PathLike] = None,
            shard: Optional[Tuple[int, int]] = None,
            fault_plan: Optional[Any] = None) -> CampaignResult:
        """Execute the grid — or one ``(index, count)`` shard of it.

        With a store attached, cells whose completion record is already
        in the manifest are *loaded* instead of recomputed — an
        interrupted (or partially sharded) run resumes with only the
        missing cells — and every freshly computed cell is recorded the
        moment it finishes, so progress survives the next interruption.

        Execution goes through the fault-tolerant supervision layer
        (:mod:`repro.campaigns.supervisor`): failed attempts are retried
        with backoff up to ``spec.max_retries`` times, each attempt is
        bounded by ``spec.cell_timeout_s`` (multi-worker runs), and a
        cell that fails every retry is quarantined as an explicit
        ``failed`` row instead of aborting the grid.  ``fault_plan`` (a
        :class:`repro.testing.chaos.FaultPlan`) deterministically
        injects infrastructure faults for chaos testing and requires
        ``spec.workers > 1``.
        """
        start = time.perf_counter()
        self._artifact_dir = None if artifact_dir is None else Path(artifact_dir)
        self._saved_archives.clear()
        if self._artifact_dir is not None:
            self._artifact_dir.mkdir(parents=True, exist_ok=True)
        if self.spec.save_traces and self._artifact_dir is None:
            raise ValueError(
                "spec.save_traces requires an artifact_dir to write the "
                "trace archives to"
            )
        if shard is None:
            cells = self.spec.grid()
        else:
            shard = (int(shard[0]), int(shard[1]))
            cells = self.spec.shard(*shard)
        if self.store is not None and hasattr(self.store, "acquire_lease"):
            # The whole run counts as "live" to concurrent maintenance:
            # the lease covers the compute time between store writes,
            # not just the writes themselves.
            self.store.acquire_lease(owner=f"campaign:{self.spec.name}")
        try:
            completed: Dict[int, CampaignCellResult] = {}
            pending: List[GridCell] = []
            for cell in cells:
                loaded = self.load_cell_result(cell)
                if loaded is not None:
                    completed[cell.index] = loaded
                else:
                    pending.append(cell)
            # Trace-archive ownership is decided among the cells that
            # *execute* this invocation: store-resumed cells never run,
            # so a full-grid (or even in-shard) owner that resolved from
            # the manifest must not leave the archive unwritten.
            self._active_indices = frozenset(cell.index for cell in pending)
            from .supervisor import CampaignSupervisor, run_cells_serial

            if self.spec.workers <= 1 or len(pending) <= 1:
                if fault_plan is not None:
                    raise ValueError(
                        "a chaos fault plan needs a multi-worker run "
                        "(spec.workers > 1 with more than one pending "
                        "cell): crash/hang/truncate faults are contained "
                        "by worker processes"
                    )
                completed.update(run_cells_serial(self, pending))
            else:
                supervisor = CampaignSupervisor(self, fault_plan=fault_plan)
                completed.update(supervisor.run(pending))
            ordered = [completed[cell.index] for cell in cells]
        finally:
            self._active_indices = None
            if (self.store is not None
                    and hasattr(self.store, "release_lease")):
                self.store.release_lease()
        result = CampaignResult(
            spec=self.spec,
            cells=ordered,
            elapsed_s=time.perf_counter() - start,
            shard=shard,
        )
        if self._artifact_dir is not None:
            result.save(self._artifact_dir)
        return result

    def _run_parallel(self, cells: List[GridCell]) -> List[CampaignCellResult]:
        """Bare process-pool execution — the *unsupervised* reference.

        ``run`` no longer uses this: campaign execution goes through
        :class:`repro.campaigns.supervisor.CampaignSupervisor`, which
        adds retries, timeouts and poison-cell quarantine on top of the
        same chunking.  This method is kept as the zero-overhead
        baseline the supervisor-overhead benchmark gate compares
        against (``benchmarks/bench_supervisor_overhead.py``) — one
        crashed worker here still aborts everything with
        ``BrokenProcessPool``.

        Cells are chunked by acquisition key so a worker reuses its
        acquisition cache across the metrics of one (die count, variant)
        point instead of re-acquiring per cell.  Workers share the
        engine's store (if any): artifacts written by one worker are
        hits for the others, and each worker records its cells'
        completion itself so an interrupted pool still leaves every
        finished cell resumable.
        """
        chunks: Dict[Tuple[int, str], List[int]] = {}
        for cell in cells:
            chunks.setdefault(cell.acquisition_key, []).append(cell.index)
        spec_dict = self.spec.to_dict()
        artifact = str(self._artifact_dir) if self._artifact_dir else None
        store_root = store_spawn_config(self.store)
        active = (sorted(self._active_indices)
                  if self._active_indices is not None else None)
        workers = min(self.spec.workers, len(chunks))
        results: Dict[int, CampaignCellResult] = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # The engine's device and golden design travel with the
            # payload so workers compute on exactly what this engine was
            # built with (a custom device/golden must not silently fall
            # back to the defaults); the golden *signature* travels too
            # so worker-written artifacts carry the same content keys as
            # this engine's.  An unbuilt golden ships as None — workers
            # build lazily only if their cells actually need a design.
            for chunk_results in pool.map(
                    _run_cells_in_subprocess,
                    [(spec_dict, indices, artifact, self.device, self._golden,
                      store_root, self._golden_signature, active)
                     for indices in chunks.values()]):
                for cell_result in chunk_results:
                    results[cell_result.index] = cell_result
        return [results[cell.index] for cell in cells]


def store_spawn_config(store: Any) -> Any:
    """The picklable store description worker payloads carry.

    Stores that know how to describe themselves (local/remote/tiered
    ``spawn_config``) ship their config dict; anything else falls back
    to its root path (rebuilt as a plain local store); ``None`` passes
    through for store-less engines.
    """
    if store is None:
        return None
    if hasattr(store, "spawn_config"):
        return store.spawn_config()
    return str(store.root)


def _run_cells_in_subprocess(payload: Tuple[Dict[str, Any], List[int],
                                            Optional[str], FPGADevice,
                                            Optional[GoldenDesign],
                                            Optional[Any], Any,
                                            Optional[List[int]]]
                             ) -> List[CampaignCellResult]:
    """Worker entry point: rebuild the engine and run a chunk of cells."""
    (spec_dict, indices, artifact_dir, device, golden, store_root,
     golden_sig, active) = payload
    engine = CampaignEngine(CampaignSpec.from_dict(spec_dict),
                            device=device, golden=golden, store=store_root)
    engine._golden_signature = golden_sig
    if artifact_dir is not None:
        engine._artifact_dir = Path(artifact_dir)
    if active is not None:
        engine._active_indices = frozenset(active)
    if engine.store is not None:
        engine.store.acquire_lease(owner=f"chunk:{engine.spec.name}")
    grid = engine.spec.grid()
    chunk_results: List[CampaignCellResult] = []
    try:
        for index in indices:
            cell_result = engine.run_cell(grid[index])
            engine.record_cell_result(grid[index], cell_result)
            chunk_results.append(cell_result)
    finally:
        if engine.store is not None:
            engine.store.release_lease()
    return chunk_results


def merge_campaign_results(results: Sequence[CampaignResult]
                           ) -> CampaignResult:
    """Fuse shard results into one full-grid :class:`CampaignResult`.

    All inputs must come from the same campaign physics (equal spec
    fragments up to execution-only fields — name, workers, trace
    archiving, retry/timeout knobs) and together cover the whole grid.
    Cells duplicated across shards are tolerated (the engine is
    deterministic, so duplicates are identical; the first occurrence
    wins) — except that a successfully computed duplicate always beats a
    ``failed`` quarantine row, so a cell that failed in one shard and
    succeeded in another (or on a retry run) merges clean.  Failed cells
    *count as coverage*: a degraded grid merges into a degraded result
    rather than an error, and rerunning the failed cells later upgrades
    it.  The merged ``elapsed_s`` is the slowest shard — the wall-clock
    of shards run in parallel.
    """
    if not results:
        raise ValueError("cannot merge zero campaign results")
    reference = spec_content_fragment(results[0].spec.to_dict())
    for result in results[1:]:
        if spec_content_fragment(result.spec.to_dict()) != reference:
            raise ValueError(
                "shard results disagree on the campaign spec; refusing to "
                "merge rows from different physics"
            )
    merged_cells: Dict[int, CampaignCellResult] = {}
    for result in results:
        for cell in result.cells:
            existing = merged_cells.get(cell.index)
            if existing is None or (existing.status != "ok"
                                    and cell.status == "ok"):
                merged_cells[cell.index] = cell
    spec = results[0].spec
    grid = spec.grid()
    missing = [cell.index for cell in grid
               if cell.index not in merged_cells]
    if missing:
        shown = ", ".join(str(index) for index in missing[:8])
        suffix = (f", … and {len(missing) - 8} more"
                  if len(missing) > 8 else "")
        raise ValueError(
            f"merged shards do not cover the campaign grid; "
            f"{len(missing)} missing cell indices: {shown}{suffix}"
        )
    return CampaignResult(
        spec=spec,
        cells=[merged_cells[cell.index] for cell in grid],
        elapsed_s=max(result.elapsed_s for result in results),
    )


def run_campaign(spec: CampaignSpec,
                 artifact_dir: Optional[PathLike] = None,
                 store: Optional[Union[ArtifactStore, PathLike]] = None
                 ) -> CampaignResult:
    """Convenience one-shot: build an engine and run the campaign."""
    return CampaignEngine(spec, store=store).run(artifact_dir=artifact_dir)
