"""Batched scenario-sweep campaigns.

This package turns the paper's fixed 8-die study into a declarative,
batched sweep engine: describe a grid of (trojans x die populations x
acquisition variants x metrics) with :class:`CampaignSpec`, execute it
with :class:`CampaignEngine` (vectorised acquisition, shared design and
fingerprint caches, supervised worker processes with retries, timeouts
and poison-cell quarantine), persist and report the results.
"""

from .engine import (
    CampaignCellResult,
    CampaignEngine,
    CampaignResult,
    CampaignRow,
    build_delay_scorer,
    build_metric,
    format_campaign_rows,
    merge_campaign_results,
    run_campaign,
    run_population_em_study,
)
from .supervisor import (
    CampaignSupervisor,
    SupervisorPolicy,
    run_cells_serial,
)
from .spec import (
    AcquisitionVariant,
    CampaignSpec,
    GridCell,
    KNOWN_DELAY_METRICS,
    KNOWN_EM_METRICS,
    KNOWN_FAULT_METRICS,
    KNOWN_METRICS,
    apply_em_overrides,
)

__all__ = [
    "AcquisitionVariant",
    "KNOWN_DELAY_METRICS",
    "KNOWN_EM_METRICS",
    "KNOWN_FAULT_METRICS",
    "KNOWN_METRICS",
    "CampaignCellResult",
    "CampaignEngine",
    "CampaignResult",
    "CampaignRow",
    "CampaignSpec",
    "CampaignSupervisor",
    "GridCell",
    "SupervisorPolicy",
    "run_cells_serial",
    "apply_em_overrides",
    "build_delay_scorer",
    "build_metric",
    "format_campaign_rows",
    "merge_campaign_results",
    "run_campaign",
    "run_population_em_study",
]
